"""Tests for the gossip overlay and advertise/request protocol."""

from __future__ import annotations

import pytest

from repro.core.messages import Block, Payload, ROOT_HASH
from repro.gossip.overlay import build_overlay, overlay_diameter
from repro.gossip.protocol import (
    Advert,
    ArtifactDelivery,
    GossipNode,
    GossipParams,
    Push,
    artifact_id,
)
from repro.sim.delays import FixedDelay
from repro.sim.metrics import Metrics
from repro.sim.network import Network
from repro.sim.simulator import Simulation


class TestOverlay:
    def test_regular_degree(self):
        adj = build_overlay(10, 4, seed=1)
        assert all(len(neigh) == 4 for neigh in adj.values())

    def test_symmetric(self):
        adj = build_overlay(10, 4, seed=1)
        for node, neighbors in adj.items():
            for other in neighbors:
                assert node in adj[other]

    def test_connected(self):
        assert overlay_diameter(build_overlay(20, 3, seed=2)) < 20

    def test_small_n_complete_graph(self):
        adj = build_overlay(3, 10, seed=1)
        assert adj == {1: [2, 3], 2: [1, 3], 3: [1, 2]}

    def test_odd_degree_sum_fixed_up(self):
        adj = build_overlay(5, 3, seed=1)  # 5*3 odd -> degree bumped to 4
        assert all(len(neigh) == 4 for neigh in adj.values())

    def test_single_node(self):
        assert build_overlay(1, 4) == {1: []}


def make_block(filler=0):
    return Block(round=1, proposer=1, parent_hash=ROOT_HASH, payload=Payload(filler_bytes=filler))


class TestArtifactId:
    def test_blocks_identified_by_hash(self):
        assert artifact_id(make_block()) == artifact_id(make_block())
        assert artifact_id(make_block()) != artifact_id(make_block(filler=1))

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            artifact_id("not an artifact")


class GossipHarness:
    """n gossip nodes over a given overlay, recording deliveries."""

    def __init__(self, n, degree, params=None, seed=0):
        self.sim = Simulation(seed=seed)
        self.network = Network(self.sim, n, FixedDelay(0.05), Metrics(n=n))
        self.delivered: dict[int, list[object]] = {i: [] for i in range(1, n + 1)}
        overlay = build_overlay(n, degree, seed=seed)
        self.nodes = {}
        params = params or GossipParams(request_timeout=0.3)
        for i in range(1, n + 1):
            node = GossipNode(
                index=i,
                network=self.network,
                neighbors=overlay[i],
                params=params,
                deliver=lambda a, i=i: self.delivered[i].append(a),
            )
            self.nodes[i] = node
            endpoint = type(
                "Endpoint", (), {"index": i, "on_receive": lambda self_, m, node=node: node.on_network(m)}
            )()
            self.network.attach(endpoint)


class TestPushPath:
    def test_small_artifact_floods_everywhere(self):
        h = GossipHarness(n=10, degree=4)
        h.nodes[1].publish(make_block())
        h.sim.run()
        assert all(len(h.delivered[i]) == 1 for i in range(2, 11))

    def test_publisher_not_self_delivered(self):
        """The publisher already has its artifact; gossip must not echo it back."""
        h = GossipHarness(n=4, degree=3)
        h.nodes[1].publish(make_block())
        h.sim.run()
        assert h.delivered[1] == []

    def test_no_duplicate_deliveries(self):
        h = GossipHarness(n=10, degree=5)
        h.nodes[1].publish(make_block())
        h.sim.run()
        assert all(len(v) <= 1 for v in h.delivered.values())

    def test_republish_is_noop(self):
        h = GossipHarness(n=4, degree=3)
        block = make_block()
        h.nodes[1].publish(block)
        h.nodes[1].publish(block)
        h.sim.run()
        assert all(len(h.delivered[i]) == 1 for i in range(2, 5))


class TestAdvertPath:
    def test_large_artifact_advertised_and_pulled(self):
        h = GossipHarness(n=6, degree=3)
        big = make_block(filler=100_000)
        h.nodes[1].publish(big)
        h.sim.run()
        assert all(h.delivered[i] == [big] for i in range(2, 7))
        kinds = h.network.metrics.msgs_by_kind
        assert kinds["gossip-advert"] > 0
        assert kinds["gossip-request"] > 0

    def test_body_downloaded_once_per_node(self):
        h = GossipHarness(n=8, degree=4)
        h.nodes[1].publish(make_block(filler=50_000))
        h.sim.run()
        bodies = sum(
            count
            for kind, count in h.network.metrics.msgs_by_kind.items()
            if kind.startswith("gossip-body")
        )
        assert bodies == 7  # exactly one body transfer per other node

    def test_retry_on_unresponsive_advertiser(self):
        """If the first advertiser crashes, the requester retries another."""
        h = GossipHarness(n=4, degree=3)
        big = make_block(filler=10_000)
        aid = artifact_id(big)
        # Node 2 and 3 advertise to node 4; node 2 is crashed so its
        # delivery never comes; node 4 must fall back to node 3.
        h.nodes[3]._have[aid] = big
        h.network.crash(2)
        h.network.send(2, 4, Advert(artifact_id=aid, size=10_000, sender=2))
        # crash(2) blocks the send; instead inject adverts directly:
        h.nodes[4]._on_advert(Advert(artifact_id=aid, size=10_000, sender=2))
        h.nodes[4]._on_advert(Advert(artifact_id=aid, size=10_000, sender=3))
        h.sim.run(until=5.0)
        assert h.delivered[4] == [big]

    def test_gives_up_after_retry_budget(self):
        params = GossipParams(request_timeout=0.1, max_request_cycles=3)
        h = GossipHarness(n=4, degree=3, params=params)
        big = make_block(filler=10_000)
        aid = artifact_id(big)
        h.network.crash(2)
        h.nodes[4]._on_advert(Advert(artifact_id=aid, size=10_000, sender=2))
        h.sim.run(until=30.0)
        assert h.delivered[4] == []
        assert not h.sim.events  # retry loop terminated

    def test_mismatched_body_ignored(self):
        h = GossipHarness(n=4, degree=3)
        real = make_block(filler=10_000)
        fake = make_block(filler=10_001)
        h.nodes[4]._on_delivery(
            ArtifactDelivery(artifact_id=artifact_id(real), artifact=fake)
        )
        assert h.delivered[4] == []
