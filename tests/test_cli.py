"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_versions(self, capsys):
        main(["versions"])
        out = capsys.readouterr().out
        assert "repro 1.0.0" in out
        assert "reed-solomon: self-check OK" in out

    def test_demo(self, capsys):
        main(["demo", "--n", "4", "--rounds", "6", "--delta", "0.05"])
        out = capsys.readouterr().out
        assert "committed" in out
        assert "2.00 δ" in out
        assert "3.00 δ" in out

    def test_demo_deterministic(self, capsys):
        main(["demo", "--n", "4", "--rounds", "5", "--seed", "9"])
        first = capsys.readouterr().out
        main(["demo", "--n", "4", "--rounds", "5", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second

    def test_trace_runs_and_summarizes(self, capsys):
        main(["trace", "--n", "4", "--rounds", "5", "--delta", "0.05"])
        out = capsys.readouterr().out
        assert "events traced" in out
        assert "icc.block.committed" in out
        assert "propose->notarize" in out

    def test_trace_export_and_reload(self, capsys, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        main(["trace", "--n", "4", "--rounds", "5", "--export", path])
        exported = capsys.readouterr().out
        main(["trace", "--input", path])
        reloaded = capsys.readouterr().out
        assert f"wrote" in exported and path in exported
        assert "loaded" in reloaded
        # Same event stream -> identical summary block.
        assert exported.split("\n\n")[1] == reloaded.split("\n\n")[1]

    def test_bench_quick_check(self, capsys, tmp_path):
        import json

        path = str(tmp_path / "bench.json")
        main([
            "bench", "--profile", "test", "--batch-size", "8",
            "--quick", "--check", "--json", path,
        ])
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "schnorr" in out
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["profile"] == "test"
        assert report["batch_size"] == 8
        primitives = {row["primitive"] for row in report["results"]}
        assert primitives == {"schnorr", "dleq", "threshold-share", "multisig-share"}
        # --check passed, so batching never lost to the single path
        for row in report["results"]:
            assert row["batch_ops_per_sec"] >= row["single_ops_per_sec"]

    def test_live_check(self, capsys):
        """The CI smoke leg: a tiny in-process TCP cluster to height 5."""
        with pytest.raises(SystemExit) as exc:
            main(["live", "--check", "--seed", "3"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "live cluster: n=4" in out
        assert "liveness    : ok" in out
        assert "safety      : ok" in out

    def test_live_inproc_writes_snapshot(self, capsys, tmp_path):
        import json

        path = str(tmp_path / "live.json")
        with pytest.raises(SystemExit) as exc:
            main([
                "live", "--inproc", "--heights", "3", "--load", "16",
                "--seed", "1", "--json", path,
            ])
        assert exc.value.code == 0
        with open(path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
        assert snapshot["cluster"]["transport"] == "tcp-localhost"
        assert snapshot["live"]["live_ok"] is True
        assert snapshot["live"]["min_height"] >= 3

    def test_serve_requires_config_and_index(self):
        with pytest.raises(SystemExit) as exc:
            main(["serve"])
        assert exc.value.code == 2  # argparse usage error

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
