"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_versions(self, capsys):
        main(["versions"])
        out = capsys.readouterr().out
        assert "repro 1.0.0" in out
        assert "reed-solomon: self-check OK" in out

    def test_demo(self, capsys):
        main(["demo", "--n", "4", "--rounds", "6", "--delta", "0.05"])
        out = capsys.readouterr().out
        assert "committed" in out
        assert "2.00 δ" in out
        assert "3.00 δ" in out

    def test_demo_deterministic(self, capsys):
        main(["demo", "--n", "4", "--rounds", "5", "--seed", "9"])
        first = capsys.readouterr().out
        main(["demo", "--n", "4", "--rounds", "5", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
