"""Tests for pool garbage collection and the adaptive-Δbnd variant."""

from __future__ import annotations

import pytest

from repro.core import AdaptiveDelays, ClusterConfig, build_cluster
from repro.sim.delays import FixedDelay


class TestGarbageCollection:
    def test_pool_memory_bounded(self):
        config = ClusterConfig(
            n=4, t=1, delta_bound=0.5, epsilon=0.005,
            delay_model=FixedDelay(0.02), seed=1, gc_depth=5, max_rounds=60,
        )
        cluster = build_cluster(config)
        cluster.start()
        sizes = []
        for _ in range(6):
            cluster.run_for(0.5)
            sizes.append(cluster.party(1).pool.artifact_count())
        cluster.check_safety()
        assert cluster.min_committed_round() >= 30
        # Pool size plateaus instead of growing linearly with rounds.
        assert sizes[-1] < sizes[1] * 2

    def test_unbounded_without_gc(self):
        config = ClusterConfig(
            n=4, t=1, delta_bound=0.5, epsilon=0.005,
            delay_model=FixedDelay(0.02), seed=1, max_rounds=60,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_for(1.0)
        early = cluster.party(1).pool.artifact_count()
        cluster.run_for(2.0)
        late = cluster.party(1).pool.artifact_count()
        assert late > early * 1.8  # grows with rounds

    def test_gc_with_byzantine_parties(self):
        from repro.adversary import EquivocatingProposerMixin, corrupt_class
        from repro.core.icc0 import ICC0Party

        config = ClusterConfig(
            n=7, t=2, delta_bound=0.3, epsilon=0.01,
            delay_model=FixedDelay(0.05), seed=2, gc_depth=5, max_rounds=20,
            corrupt={1: corrupt_class(ICC0Party, EquivocatingProposerMixin), 2: None},
        )
        cluster = build_cluster(config)
        cluster.start()
        assert cluster.run_until_all_committed_round(18, timeout=300)
        cluster.check_safety()

    def test_prune_returns_count_and_removes(self):
        config = ClusterConfig(
            n=4, t=1, delta_bound=0.5, epsilon=0.01,
            delay_model=FixedDelay(0.05), seed=1, max_rounds=10,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_round(8, timeout=60)
        pool = cluster.party(1).pool
        before = pool.artifact_count()
        removed = pool.prune(5)
        assert removed > 0
        assert pool.artifact_count() < before
        assert not pool.notarized_blocks(3)
        assert pool.notarized_blocks(7)  # recent rounds retained


class TestAdaptiveDelays:
    def test_liveness_with_underestimated_bound(self):
        """Start with Δbnd far below the real delay: the standard protocol
        would keep letting non-leaders pre-empt; the adaptive variant grows
        its local estimate until honest-leader rounds finalize."""
        real_delta = 0.2
        config = ClusterConfig(
            n=4, t=1, delta_bound=0.01,  # ignored:
            protocol_delays=AdaptiveDelays(initial_bound=0.01, epsilon=0.01),
            delay_model=FixedDelay(real_delta), seed=3, max_rounds=40,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_for(120.0)
        cluster.check_safety()
        assert cluster.min_committed_round() >= 10
        # Local estimates grew (the decay floor keeps them oscillating near
        # the smallest value that yields clean rounds, not necessarily all
        # the way to the true δ).
        assert all(p.delays.current_bound > 0.01 for p in cluster.parties)

    def test_estimates_are_per_party(self):
        config = ClusterConfig(
            n=4, t=1, delta_bound=0.01,
            protocol_delays=AdaptiveDelays(initial_bound=0.05, epsilon=0.01),
            delay_model=FixedDelay(0.05), seed=4, max_rounds=10,
        )
        cluster = build_cluster(config)
        parties = cluster.parties
        assert parties[0].delays is not parties[1].delays

    def test_adaptive_matches_standard_when_bound_correct(self):
        delta = 0.05
        config = ClusterConfig(
            n=4, t=1, delta_bound=0.5,
            protocol_delays=AdaptiveDelays(initial_bound=0.5, epsilon=0.01),
            delay_model=FixedDelay(delta), seed=5, max_rounds=12,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_round(10, timeout=60)
        durations = cluster.metrics.round_durations(1)
        steady = [v for k, v in durations.items() if 2 <= k <= 10]
        assert min(steady) == pytest.approx(2 * delta + 0.0, abs=0.02)
