"""Theory-vs-simulation: the analytical models must predict the simulator."""

from __future__ import annotations

import pytest

from repro.analysis import (
    commit_gap_quantile,
    expected_commit_gap,
    expected_first_honest_rank,
    first_honest_rank_distribution,
    round_duration_synchronous,
    round_duration_with_silent_parties,
    synchronous_messages_per_round,
)
from repro.core import ClusterConfig, build_cluster
from repro.sim.delays import FixedDelay


class TestClosedForms:
    def test_rank_distribution_sums_to_one(self):
        for n, t in ((4, 1), (13, 4), (40, 13)):
            assert sum(first_honest_rank_distribution(n, t)) == pytest.approx(1.0)

    def test_expected_first_honest_rank_closed_form(self):
        """E = t/(n-t+1): check the distribution against the closed form."""
        for n, t in ((4, 1), (13, 4), (40, 13), (100, 33)):
            assert expected_first_honest_rank(n, t) == pytest.approx(t / (n - t + 1))

    def test_no_faults_degenerate(self):
        assert expected_first_honest_rank(10, 0) == 0.0
        assert expected_commit_gap(10, 0) == 1.0
        assert commit_gap_quantile(10, 0) == 1

    def test_commit_gap_grows_with_t(self):
        assert expected_commit_gap(13, 4) > expected_commit_gap(13, 1)

    def test_quantile_is_log_n_scale(self):
        import math

        for n in (7, 13, 40, 100):
            t = (n - 1) // 3
            q = commit_gap_quantile(n, t, confidence=0.999)
            assert q <= 3 * math.log2(n) + 4

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            expected_commit_gap(9, 3)


class TestTheoryMatchesSimulation:
    def test_round_duration_model(self):
        delta, epsilon = 0.05, 0.02
        config = ClusterConfig(
            n=7, t=2, delta_bound=0.5, epsilon=epsilon,
            delay_model=FixedDelay(delta), max_rounds=12, seed=1,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_round(10, timeout=60)
        durations = cluster.metrics.round_durations(1)
        steady = [v for k, v in durations.items() if 2 <= k <= 10]
        predicted = round_duration_synchronous(delta, epsilon)
        assert sum(steady) / len(steady) == pytest.approx(predicted, rel=0.05)

    def test_silent_party_model(self):
        """The Table 1 failure-scenario model predicts the slowdown."""
        delta, epsilon, bound = 0.05, 0.02, 0.5
        n, t = 10, 3
        config = ClusterConfig(
            n=n, t=t, delta_bound=bound, epsilon=epsilon,
            delay_model=FixedDelay(delta), max_rounds=60, seed=2,
            corrupt={i: None for i in range(1, t + 1)},
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_for(200.0)
        observer = cluster.honest_parties[0].index
        durations = cluster.metrics.round_durations(observer)
        steady = [v for k, v in durations.items() if k >= 2]
        measured = sum(steady) / len(steady)
        predicted = round_duration_with_silent_parties(delta, epsilon, bound, n, t)
        assert measured == pytest.approx(predicted, rel=0.25)

    def test_message_complexity_constant(self):
        config = ClusterConfig(
            n=10, t=3, delta_bound=0.3, epsilon=0.01,
            delay_model=FixedDelay(0.05), max_rounds=10, seed=3,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_round(8, timeout=60)
        measured = sum(cluster.metrics.messages_in_round(k) for k in range(2, 9)) / 7
        assert measured == pytest.approx(synchronous_messages_per_round(10), rel=0.05)

    def test_traffic_model_exact(self):
        """The per-party egress model matches the simulator to the byte."""
        from repro.analysis import icc0_bytes_per_party_per_round
        from repro.core.messages import Payload

        payload = Payload(commands=(b"0123456789",))
        config = ClusterConfig(
            n=7, t=2, delta_bound=0.5, epsilon=0.01,
            delay_model=FixedDelay(0.05), max_rounds=40, seed=6,
            payload_source=lambda p, r, c: payload,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_round(40, timeout=120)
        predicted = icc0_bytes_per_party_per_round(7, payload.wire_size())
        # Average over many rounds to wash out the boot round's missing
        # parent notarization and the final partial round.
        measured = sum(cluster.metrics.bytes_sent.values()) / 7 / 40
        assert measured == pytest.approx(predicted, rel=0.02)

    def test_commit_gap_bounded_by_theory(self):
        from repro.adversary import (
            AggressiveByzantineMixin,
            WithholdFinalizationMixin,
            corrupt_class,
        )
        from repro.core.icc0 import ICC0Party
        from repro.experiments.round_complexity import run_one

        result = run_one(13, rounds=80, seed=11)
        assert result.mean_gap <= expected_commit_gap(13, 4) + 0.5
        assert result.max_gap <= commit_gap_quantile(13, 4, confidence=0.9999) + 2
