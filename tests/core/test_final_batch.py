"""Final coverage batch: RBC-serialize roundtrip property, pool queries,
beacon pipelining across parties, and bandwidth-experiment smoke."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ClusterConfig, build_cluster
from repro.core.messages import Block, Payload, ROOT_HASH
from repro.core.serialize import deserialize_block, serialize_block
from repro.sim.delays import FixedDelay


class TestRbcSerializeRoundtripProperty:
    @given(
        st.lists(st.binary(max_size=48), max_size=6),
        st.integers(min_value=0, max_value=4096),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=30, deadline=None)
    def test_block_survives_erasure_coding(self, commands, filler, k, seed):
        """serialize → RS-encode → reconstruct from random k shards →
        deserialize is the identity on blocks (the full ICC2 data path)."""
        from random import Random

        from repro.erasure.reed_solomon import CodecParams, decode, encode

        block = Block(
            round=3,
            proposer=2,
            parent_hash=ROOT_HASH,
            payload=Payload(commands=tuple(commands), filler_bytes=filler),
        )
        data = serialize_block(block)
        m = min(k + 8, 40)
        params = CodecParams(k, m)
        shards = encode(data, params)
        chosen = Random(seed).sample(range(m), k)
        restored = decode({i: shards[i] for i in chosen}, params, len(data))
        assert deserialize_block(restored) == block
        assert deserialize_block(restored).hash == block.hash


class TestBeaconPipeliningAcrossParties:
    def test_beacon_runs_ahead_of_rounds(self):
        """The pipelined shares keep the beacon at most one round ahead —
        and never stall the round loop waiting for shares."""
        config = ClusterConfig(
            n=4, t=1, delta_bound=0.5, epsilon=0.01,
            delay_model=FixedDelay(0.05), max_rounds=10, seed=2,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_round(8, timeout=60)
        for party in cluster.parties:
            assert party._beacon_computed >= party.round - 1
            # Never absurdly far ahead: shares for k+1 are released only on
            # entering round k.
            assert party._beacon_computed <= party.round + 1


class TestPoolQueries:
    def test_rounds_with_final_activity(self):
        config = ClusterConfig(
            n=4, t=1, delta_bound=0.5, epsilon=0.01,
            delay_model=FixedDelay(0.05), max_rounds=5, seed=1,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_round(4, timeout=60)
        pool = cluster.party(1).pool
        active = pool.rounds_with_final_activity()
        assert set(active) >= {1, 2, 3, 4}

    def test_finalized_blocks_query(self):
        config = ClusterConfig(
            n=4, t=1, delta_bound=0.5, epsilon=0.01,
            delay_model=FixedDelay(0.05), max_rounds=4, seed=1,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_round(3, timeout=60)
        pool = cluster.party(1).pool
        assert len(pool.finalized_blocks(2)) == 1
        assert pool.finalized_blocks(99) == []


class TestBandwidthExperimentSmoke:
    def test_small_point(self):
        from repro.experiments.bandwidth import run_one

        icc0 = run_one("ICC0", block_bytes=100_000, uplink_mbps=40.0, n=7, rounds=4)
        icc2 = run_one("ICC2", block_bytes=100_000, uplink_mbps=40.0, n=7, rounds=4)
        assert icc0.round_time > icc2.round_time
        assert icc2.round_time < 8 * icc2.serialization_floor


class TestNetworkReviveSemantics:
    def test_revived_party_receives_again(self):
        from repro.sim.metrics import Metrics
        from repro.sim.network import Network
        from repro.sim.simulator import Simulation
        from tests.sim.test_network import Recorder

        sim = Simulation(seed=1)
        net = Network(sim, 2, FixedDelay(0.01), Metrics(n=2))
        a, b = Recorder(1, sim), Recorder(2, sim)
        net.attach(a)
        net.attach(b)
        net.crash(2)
        net.send(1, 2, b"lost")
        sim.run()
        assert b.received == []
        net.revive(2)
        net.send(1, 2, b"found")
        sim.run()
        assert [m for _, m in b.received] == [b"found"]
