"""Tests for canonical block serialization (ICC2's wire format)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import Block, Payload, ROOT_HASH
from repro.core.serialize import DeserializeError, deserialize_block, serialize_block


def make_block(commands=(), filler=0, round=3, proposer=2):
    return Block(
        round=round,
        proposer=proposer,
        parent_hash=ROOT_HASH,
        payload=Payload(commands=tuple(commands), filler_bytes=filler),
    )


class TestRoundTrip:
    def test_empty(self):
        block = make_block()
        assert deserialize_block(serialize_block(block)) == block

    def test_commands(self):
        block = make_block(commands=(b"put x 1", b"", b"\x00\xff" * 10))
        restored = deserialize_block(serialize_block(block))
        assert restored == block
        assert restored.hash == block.hash

    def test_filler(self):
        block = make_block(filler=5000)
        data = serialize_block(block)
        assert len(data) >= 5000
        assert deserialize_block(data) == block

    @given(
        st.lists(st.binary(max_size=64), max_size=8),
        st.integers(min_value=0, max_value=2048),
        st.integers(min_value=1, max_value=1_000_000),
        st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, commands, filler, round, proposer):
        block = make_block(commands=commands, filler=filler, round=round, proposer=proposer)
        assert deserialize_block(serialize_block(block)) == block


class TestMalformed:
    def test_bad_magic(self):
        data = bytearray(serialize_block(make_block()))
        data[0] ^= 0xFF
        with pytest.raises(DeserializeError):
            deserialize_block(bytes(data))

    def test_truncated(self):
        data = serialize_block(make_block(commands=(b"hello world",)))
        with pytest.raises(DeserializeError):
            deserialize_block(data[: len(data) - 3])

    def test_trailing_garbage(self):
        data = serialize_block(make_block())
        with pytest.raises(DeserializeError):
            deserialize_block(data + b"extra")

    def test_command_length_overflow(self):
        block = make_block(commands=(b"abcd",))
        data = bytearray(serialize_block(block))
        # Corrupt the command length prefix to point past the end.
        offset = 60
        data[offset : offset + 4] = (2**31).to_bytes(4, "big")
        with pytest.raises(DeserializeError):
            deserialize_block(bytes(data))

    def test_empty_input(self):
        with pytest.raises(DeserializeError):
            deserialize_block(b"")
