"""Fine-grained tests of Figure 1's clause mechanics.

These drive a single ICC0 party directly (messages injected by hand) to
pin down behaviours integration tests can't isolate: rank priority, the
disqualification rule, echo-at-most-twice, the finalization-share guard
N ⊆ {B}, and beacon pipelining.
"""

from __future__ import annotations

import pytest

from repro.core import ClusterConfig, build_cluster
from repro.core import messages as msg
from repro.core.messages import (
    Authenticator,
    BeaconShare,
    Block,
    NotarizationShare,
    Payload,
    ROOT_HASH,
)
from repro.sim.delays import FixedDelay


def build_single_observed_cluster(n=4, t=1, epsilon=0.01, delta_bound=0.5, seed=2):
    # seed=2 puts the observed party (index 1) at rank 3 in round 1, so its
    # own proposal never pre-empts the blocks the tests inject.
    """A cluster where party 1 is honest and the rest are crash-silent,
    so the test fully controls what party 1 sees."""
    config = ClusterConfig(
        n=n,
        t=t,
        delta_bound=delta_bound,
        epsilon=epsilon,
        delay_model=FixedDelay(0.01),
        seed=seed,
        corrupt={i: None for i in range(2, min(t + 2, n + 1))},
    )
    return build_cluster(config)


class Driver:
    """Crafts correctly-signed artifacts from other parties' keyrings."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.rings = cluster.keyrings
        self.subject = cluster.party(1)

    def start_subject(self):
        self.subject.start()

    def feed_beacon(self, round):
        """Give the subject enough foreign beacon shares for ``round``."""
        previous = self.subject.pool.beacon_value(round - 1)
        assert previous is not None
        signed = msg.beacon_message(round, previous)
        for ring in self.rings[1 : self.cluster.params.t + 1]:
            share = BeaconShare(
                round=round, signer=ring.index, share=ring.sign_beacon_share(signed)
            )
            self.subject.on_receive(share)

    def make_block(self, round, proposer, parent_hash=ROOT_HASH, tag=b""):
        block = Block(
            round=round,
            proposer=proposer,
            parent_hash=parent_hash,
            payload=Payload(commands=(tag,)) if tag else Payload(),
        )
        signed = msg.authenticator_message(round, proposer, block.hash)
        auth = Authenticator(
            round=round,
            proposer=proposer,
            block_hash=block.hash,
            signature=self.rings[proposer - 1].sign_auth(signed),
        )
        return block, auth

    def feed_block(self, block, auth):
        self.subject.on_receive(block)
        self.subject.on_receive(auth)

    def rank_of(self, proposer):
        return self.subject.ranks.rank_of(proposer)

    def run(self, seconds):
        self.cluster.sim.run(until=self.cluster.sim.now + seconds)


@pytest.fixture
def driver():
    cluster = build_single_observed_cluster()
    d = Driver(cluster)
    d.start_subject()
    d.feed_beacon(1)
    d.run(0.001)
    assert d.subject.round == 1 and not d.subject.waiting_beacon
    return d


class TestRankPriority:
    def test_lower_rank_block_preempts(self, driver):
        """If a lower-ranked block is valid, a higher-ranked one is not
        supported even after its Δntry elapsed."""
        subject = driver.subject
        proposers = sorted(range(1, 5), key=driver.rank_of)
        low, high = proposers[0], proposers[-1]
        if low == 1:
            low = proposers[1]  # subject proposes by itself; use others
        block_low, auth_low = driver.make_block(1, low, tag=b"low")
        block_high, auth_high = driver.make_block(1, high, tag=b"high")
        driver.feed_block(block_high, auth_high)
        driver.feed_block(block_low, auth_low)
        driver.run(5.0)  # all Δntry gates pass
        assert block_low.hash in subject.notar_shared
        assert block_high.hash not in subject.notar_shared

    def test_higher_rank_supported_if_alone(self, driver):
        subject = driver.subject
        proposers = sorted(range(2, 5), key=driver.rank_of)
        high = proposers[-1]
        block, auth = driver.make_block(1, high, tag=b"only")
        driver.feed_block(block, auth)
        driver.run(10.0)
        assert block.hash in subject.notar_shared

    def test_ntry_gate_respected(self, driver):
        """A rank-r block is not supported before Δntry(r)."""
        subject = driver.subject
        proposers = sorted(range(2, 5), key=driver.rank_of)
        high = proposers[-1]
        rank = driver.rank_of(high)
        block, auth = driver.make_block(1, high, tag=b"late-gate")
        driver.feed_block(block, auth)
        gate = subject.delays.ntry(rank)
        driver.run(gate * 0.5)
        assert block.hash not in subject.notar_shared
        driver.run(gate)
        assert block.hash in subject.notar_shared


class TestDisqualification:
    def test_equivocating_rank_disqualified(self, driver):
        subject = driver.subject
        proposers = sorted(range(2, 5), key=driver.rank_of)
        culprit = proposers[0]
        rank = driver.rank_of(culprit)
        twin_a, auth_a = driver.make_block(1, culprit, tag=b"twin-a")
        twin_b, auth_b = driver.make_block(1, culprit, tag=b"twin-b")
        driver.feed_block(twin_a, auth_a)
        driver.run(3.0)
        assert twin_a.hash in subject.notar_shared
        driver.feed_block(twin_b, auth_b)
        driver.run(0.5)
        assert rank in subject.disqualified
        assert twin_b.hash not in subject.notar_shared

    def test_disqualified_rank_unblocks_next(self, driver):
        """After disqualifying rank r, the next rank's block is supported."""
        subject = driver.subject
        proposers = sorted(range(2, 5), key=driver.rank_of)
        culprit, fallback = proposers[0], proposers[1]
        twin_a, auth_a = driver.make_block(1, culprit, tag=b"a")
        twin_b, auth_b = driver.make_block(1, culprit, tag=b"b")
        other, other_auth = driver.make_block(1, fallback, tag=b"fallback")
        driver.feed_block(twin_a, auth_a)
        driver.feed_block(twin_b, auth_b)
        driver.feed_block(other, other_auth)
        driver.run(6.0)
        assert driver.rank_of(culprit) in subject.disqualified
        assert other.hash in subject.notar_shared

    def test_third_twin_not_echoed(self, driver):
        """A party echoes at most 2 blocks of any given rank (Section 3.5)."""
        subject = driver.subject
        proposers = sorted(range(2, 5), key=driver.rank_of)
        culprit = proposers[0]
        before = subject.metrics.counters.get("blocks-echoed", 0)
        for tag in (b"t1", b"t2", b"t3", b"t4"):
            block, auth = driver.make_block(1, culprit, tag=tag)
            driver.feed_block(block, auth)
            driver.run(2.0)
        echoed = subject.metrics.counters.get("blocks-echoed", 0) - before
        assert echoed == 2


class TestBeaconPipelining:
    def test_share_for_next_round_broadcast_on_entry(self, driver):
        """Entering round k immediately shares the round-(k+1) beacon."""
        subject = driver.subject
        assert subject.pool.beacon_share_count(2) >= 1  # own share present

    def test_beacon_for_future_round_computable_early(self, driver):
        """With t+1 shares for round 2, R_2 exists while still in round 1."""
        driver.feed_beacon(2)
        driver.run(0.01)
        assert driver.subject.pool.beacon_value(2) is not None
        assert driver.subject.round == 1  # still in round 1


class TestFinalizationShareGuard:
    def test_no_final_share_after_supporting_two_blocks(self):
        """If N contains a block other than the notarized one, no
        finalization share is sent (the N ⊆ {B} guard)."""
        cluster = build_single_observed_cluster(epsilon=0.01)
        d = Driver(cluster)
        d.start_subject()
        d.feed_beacon(1)
        d.run(0.001)
        subject = d.subject
        proposers = sorted(range(2, 5), key=d.rank_of)
        first, second = proposers[0], proposers[1]
        block_a, auth_a = d.make_block(1, first, tag=b"a")
        block_b, auth_b = d.make_block(1, second, tag=b"b")
        # Subject supports block_a (and its own proposal may also be in N).
        d.feed_block(block_a, auth_a)
        d.run(5.0)
        assert block_a.hash in subject.notar_shared
        # Now block_b gets notarized by others (subject never shared it).
        signed = msg.notarization_message(1, second, block_b.hash)
        shares = [r.sign_notary_share(signed) for r in d.rings[1:4]]
        agg = d.rings[0].combine_notary(signed, shares)
        d.feed_block(block_b, auth_b)
        before = subject.metrics.counters.get("finalization-shares-sent", 0)
        subject.on_receive(
            msg.Notarization(round=1, proposer=second, block_hash=block_b.hash, aggregate=agg)
        )
        d.run(0.1)
        after = subject.metrics.counters.get("finalization-shares-sent", 0)
        assert subject.round == 2  # round finished on the notarization
        assert after == before  # but no finalization share was sent
