"""Cross-cutting runs: WAN delays × protocols × crypto backends."""

from __future__ import annotations

import pytest

from repro.core import ClusterConfig, build_cluster
from repro.core.icc1 import ICC1Party
from repro.core.icc2 import ICC2Party
from repro.gossip import GossipParams, build_overlay
from repro.sim.delays import WanDelay


def wan_config(party="ICC0", n=7, seed=1, backend="fast", max_rounds=10, **overrides):
    from repro.core.icc0 import ICC0Party

    classes = {"ICC0": ICC0Party, "ICC1": ICC1Party, "ICC2": ICC2Party}
    extra = {}
    if party == "ICC1":
        extra = dict(
            overlay=build_overlay(n, 4, seed=seed),
            gossip_params=GossipParams(request_timeout=0.3),
        )
    return ClusterConfig(
        n=n,
        t=(n - 1) // 3,
        delta_bound=0.3,
        epsilon=0.02,
        delay_model=WanDelay(),
        seed=seed,
        max_rounds=max_rounds,
        party_class=classes[party],
        crypto_backend=backend,
        extra_party_kwargs=extra,
        **overrides,
    )


class TestWanRuns:
    @pytest.mark.parametrize("protocol", ["ICC0", "ICC1", "ICC2"])
    def test_all_protocols_over_wan(self, protocol):
        cluster = build_cluster(wan_config(protocol))
        cluster.start()
        assert cluster.run_until_all_committed_round(8, timeout=300)
        cluster.check_safety()

    def test_wan_round_times_track_actual_delays(self):
        """Optimistic responsiveness on a heterogeneous WAN: rounds finish
        in network time, far below Δbnd-scale."""
        cluster = build_cluster(wan_config("ICC0"))
        cluster.start()
        cluster.run_until_all_committed_round(8, timeout=300)
        durations = cluster.metrics.round_durations(1)
        steady = [v for k, v in durations.items() if k >= 2]
        # One-way delays are <= ~55 ms(+jitter); rounds are ~2 slow-hops.
        assert max(steady) < 0.35
        assert sum(steady) / len(steady) < 0.2


class TestRealCryptoBackend:
    @pytest.mark.parametrize("protocol", ["ICC0", "ICC2"])
    def test_protocols_on_real_crypto(self, protocol):
        """Full runs over the actual discrete-log constructions (small
        group): nothing in the protocol logic depends on the fast backend."""
        cluster = build_cluster(
            wan_config(protocol, n=4, backend="real", max_rounds=4)
        )
        cluster.start()
        assert cluster.run_until_all_committed_round(3, timeout=300)
        cluster.check_safety()

    def test_backends_agree_on_protocol_behaviour(self):
        """Same seed and topology: both backends commit the same chain
        shape (leader schedule differs only via beacon values, so compare
        structure, not hashes)."""
        runs = {}
        for backend in ("fast", "real"):
            cluster = build_cluster(
                wan_config("ICC0", n=4, backend=backend, max_rounds=5)
            )
            cluster.start()
            cluster.run_until_all_committed_round(4, timeout=300)
            cluster.check_safety()
            runs[backend] = [b.round for b in cluster.party(1).output_log]
        assert runs["fast"][:4] == runs["real"][:4] == [1, 2, 3, 4]
