"""Integration tests for ICC1 (gossip) and ICC2 (reliable broadcast)."""

from __future__ import annotations

import pytest

from repro.adversary import EquivocatingProposerMixin, SilentMixin, corrupt_class
from repro.core import ClusterConfig, Payload, build_cluster
from repro.core.icc1 import ICC1Party
from repro.core.icc2 import ICC2Party
from repro.gossip import GossipParams, build_overlay
from repro.sim.delays import FixedDelay


def icc1_config(n=7, t=2, degree=4, rounds=10, seed=1, delta=0.05, **overrides):
    return ClusterConfig(
        n=n,
        t=t,
        delta_bound=delta * 6,
        epsilon=0.01,
        delay_model=FixedDelay(delta),
        max_rounds=rounds,
        seed=seed,
        party_class=ICC1Party,
        extra_party_kwargs=dict(
            overlay=build_overlay(n, degree, seed=seed),
            gossip_params=GossipParams(degree=degree, request_timeout=0.5),
        ),
        **overrides,
    )


def icc2_config(n=7, t=2, rounds=10, seed=1, delta=0.05, **overrides):
    return ClusterConfig(
        n=n,
        t=t,
        delta_bound=delta * 6,
        epsilon=0.01,
        delay_model=FixedDelay(delta),
        max_rounds=rounds,
        seed=seed,
        party_class=ICC2Party,
        **overrides,
    )


class TestICC1:
    def test_happy_path(self):
        cluster = build_cluster(icc1_config())
        cluster.start()
        assert cluster.run_until_all_committed_round(8, timeout=120)
        cluster.check_safety()

    def test_sparse_overlay(self):
        cluster = build_cluster(icc1_config(n=13, t=4, degree=3, seed=3))
        cluster.start()
        assert cluster.run_until_all_committed_round(8, timeout=300)
        cluster.check_safety()

    def test_large_blocks_are_pulled_not_pushed(self):
        config = icc1_config(
            payload_source=lambda p, r, c: Payload(filler_bytes=50_000)
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_round(8, timeout=120)
        kinds = cluster.metrics.bytes_by_kind
        assert any(k.startswith("gossip-body:block") for k in kinds)
        assert not any(k.startswith("gossip-push:block") for k in kinds)

    def test_leader_egress_bounded_by_degree(self):
        """The gossip layer removes the (n-1)·S leader bottleneck."""
        block_size = 100_000
        n, degree = 13, 4
        config = icc1_config(
            n=n, t=4, degree=degree, rounds=6, seed=5,
            payload_source=lambda p, r, c: Payload(filler_bytes=block_size),
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_round(5, timeout=300)
        rounds_done = cluster.party(1).k_max
        max_node = max(cluster.metrics.bytes_sent.values()) / rounds_done
        assert max_node < (degree + 1) * block_size  # far below (n-1)·S

    def test_byzantine_mix_over_gossip(self):
        silent = corrupt_class(ICC1Party, SilentMixin)
        equiv = corrupt_class(ICC1Party, EquivocatingProposerMixin)
        cluster = build_cluster(icc1_config(corrupt={1: silent, 2: equiv}, rounds=12))
        cluster.start()
        assert cluster.run_until_all_committed_round(10, timeout=300)
        cluster.check_safety()

    def test_rounds_follow_gossip_latency(self):
        """ICC1 with a complete overlay is as fast as ICC0 (2δ rounds)."""
        delta = 0.05
        cluster = build_cluster(icc1_config(n=4, t=1, degree=3, delta=delta))
        cluster.start()
        cluster.run_until_all_committed_round(8, timeout=60)
        durations = cluster.metrics.round_durations(1)
        steady = [v for k, v in durations.items() if 2 <= k <= 8]
        assert min(steady) == pytest.approx(2 * delta, rel=0.2)


class TestICC2:
    def test_happy_path(self):
        cluster = build_cluster(icc2_config())
        cluster.start()
        assert cluster.run_until_all_committed_round(8, timeout=120)
        cluster.check_safety()

    def test_real_payload_roundtrip(self):
        """ICC2 genuinely serializes, erasure-codes and reconstructs blocks."""
        config = icc2_config(
            payload_source=lambda p, r, c: Payload(commands=(b"op-%d" % r,))
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_round(8, timeout=120)
        cluster.check_safety()
        commands = cluster.party(1).output_commands()
        assert b"op-3" in commands

    def test_round_time_is_three_delta(self):
        delta = 0.05
        cluster = build_cluster(icc2_config(delta=delta, seed=2))
        cluster.start()
        cluster.run_until_all_committed_round(8, timeout=120)
        durations = cluster.metrics.round_durations(1)
        steady = [v for k, v in durations.items() if 2 <= k <= 8]
        for d in steady:
            assert d == pytest.approx(3 * delta, rel=0.1)

    def test_per_party_traffic_is_linear_in_block_size(self):
        """Every party's egress is ~3S (n/(t+1)·S), not (n-1)·S."""
        block_size = 60_000
        n = 10
        config = icc2_config(
            n=n, t=3, rounds=6, seed=4,
            payload_source=lambda p, r, c: Payload(filler_bytes=block_size),
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_round(5, timeout=300)
        rounds_done = cluster.party(1).k_max
        per_node = [v / rounds_done for v in cluster.metrics.bytes_sent.values()]
        expansion = n / (3 + 1)
        for egress in per_node:
            assert egress < (expansion + 1.5) * block_size

    def test_byzantine_mix_over_rbc(self):
        silent = corrupt_class(ICC2Party, SilentMixin)
        equiv = corrupt_class(ICC2Party, EquivocatingProposerMixin)
        cluster = build_cluster(icc2_config(corrupt={1: silent, 2: equiv}, rounds=12))
        cluster.start()
        assert cluster.run_until_all_committed_round(10, timeout=300)
        cluster.check_safety()

    def test_crash_failures(self):
        cluster = build_cluster(icc2_config(corrupt={1: None, 2: None}, rounds=10))
        cluster.start()
        assert cluster.run_until_all_committed_round(8, timeout=300)
        cluster.check_safety()
