"""Randomized-schedule fuzz tests and cross-feature composition tests.

Each fuzz case draws a random configuration (network jitter, Byzantine
mix, protocol variant) from a seed and checks the full invariant set:
prefix safety, P2 on pools, chain contiguity, and eventual progress.
"""

from __future__ import annotations

import pytest

from repro.adversary import (
    AggressiveByzantineMixin,
    ConsistentFailureMixin,
    EquivocatingProposerMixin,
    LazyLeaderMixin,
    SilentMixin,
    WithholdFinalizationMixin,
    WithholdNotarizationMixin,
    corrupt_class,
)
from repro.core import ClusterConfig, Payload, build_cluster
from repro.core.catchup import CatchupMixin
from repro.core.icc0 import ICC0Party
from repro.core.icc1 import ICC1Party
from repro.core.icc2 import ICC2Party
from repro.experiments.properties import check_p2_on_cluster
from repro.gossip import GossipParams, build_overlay
from repro.sim.delays import FixedDelay, UniformDelay

MIXINS = [
    AggressiveByzantineMixin,
    EquivocatingProposerMixin,
    SilentMixin,
    WithholdFinalizationMixin,
    WithholdNotarizationMixin,
    LazyLeaderMixin,
    ConsistentFailureMixin,
    None,  # crash
]


def fuzz_config(seed: int) -> ClusterConfig:
    from random import Random

    rng = Random(seed)
    n = rng.choice([4, 7, 10])
    t = (n - 1) // 3
    protocol = rng.choice(["ICC0", "ICC1", "ICC2"])
    classes = {"ICC0": ICC0Party, "ICC1": ICC1Party, "ICC2": ICC2Party}
    base = classes[protocol]
    extra = {}
    if protocol == "ICC1":
        extra = dict(
            overlay=build_overlay(n, min(4, n - 1), seed=seed),
            gossip_params=GossipParams(request_timeout=0.4),
        )
    corrupt = {}
    indices = rng.sample(range(1, n + 1), t)
    for index in indices:
        mixin = rng.choice(MIXINS)
        corrupt[index] = None if mixin is None else corrupt_class(base, mixin)
    lo = rng.uniform(0.005, 0.05)
    return ClusterConfig(
        n=n,
        t=t,
        delta_bound=0.4,
        epsilon=rng.uniform(0.005, 0.05),
        delay_model=UniformDelay(lo, lo + rng.uniform(0.01, 0.15)),
        seed=seed,
        max_rounds=12,
        party_class=base,
        corrupt=corrupt,
        gc_depth=rng.choice([None, 6]),
        extra_party_kwargs=extra,
    )


@pytest.mark.parametrize("seed", range(300, 312))
def test_fuzzed_run_upholds_all_invariants(seed):
    config = fuzz_config(seed)
    cluster = build_cluster(config)
    cluster.start()
    cluster.run_for(90.0, max_events=20_000_000)
    # Safety: prefix property + P2 + contiguous committed rounds.
    cluster.check_safety()
    if config.gc_depth is None:
        check_p2_on_cluster(cluster)
    for party in cluster.honest_parties:
        rounds = [b.round for b in party.output_log]
        start = rounds[0] if rounds else 1
        assert rounds == list(range(start, start + len(rounds)))
    # Liveness: every honest party made it through all rounds.
    assert all(p.round >= 12 for p in cluster.honest_parties), (
        f"seed {seed}: liveness stalled at rounds "
        f"{[p.round for p in cluster.honest_parties]}"
    )
    assert cluster.min_committed_round() >= 10


class TestConsistentFailures:
    def test_undetectable_but_tolerated(self):
        consistent = corrupt_class(ICC0Party, ConsistentFailureMixin)
        config = ClusterConfig(
            n=7, t=2, delta_bound=0.3, epsilon=0.01,
            delay_model=FixedDelay(0.05), max_rounds=15, seed=5,
            corrupt={1: consistent, 2: consistent},
        )
        cluster = build_cluster(config)
        cluster.start()
        assert cluster.run_until_all_committed_round(13, timeout=300)
        cluster.check_safety()
        # Nothing attributable: no disqualifications were triggered.
        assert cluster.metrics.counters.get("ranks-disqualified", 0) == 0
        # But their slots produced no blocks.
        proposers = {b.proposer for b in cluster.party(3).output_log}
        assert not proposers & {1, 2}


class TestCatchupComposition:
    @pytest.mark.parametrize("base", [ICC1Party, ICC2Party])
    def test_catchup_composes_with_other_protocols(self, base):
        catchup_cls = type(f"Catchup{base.__name__}", (CatchupMixin, base), {})
        extra = dict(lag_threshold=4, request_cooldown=1.0)
        if base is ICC1Party:
            extra.update(
                overlay=build_overlay(4, 3, seed=1),
                gossip_params=GossipParams(request_timeout=0.4),
            )
        config = ClusterConfig(
            n=4, t=1, delta_bound=0.5, epsilon=0.01,
            delay_model=FixedDelay(0.05), seed=1, gc_depth=5,
            max_rounds=150, party_class=catchup_cls,
            extra_party_kwargs=extra,
        )
        cluster = build_cluster(config)
        cluster.network.crash(4)
        cluster.sim.schedule_at(12.0, lambda: cluster.network.revive(4))
        cluster.start()
        cluster.run_for(50.0)
        laggard = cluster.party(4)
        assert laggard.k_max >= cluster.party(1).k_max - 6
        assert cluster.metrics.counters.get("sync-applied", 0) >= 1


class TestDuplicationIdempotence:
    @pytest.mark.parametrize("party_cls", [ICC0Party, ICC2Party])
    def test_protocols_absorb_duplicated_messages(self, party_cls):
        """Transport-level duplication must be invisible: the pool dedups
        everything, so timing and outputs match the duplicate-free run."""
        def run(dup_prob):
            config = ClusterConfig(
                n=4, t=1, delta_bound=0.3, epsilon=0.01,
                delay_model=FixedDelay(0.05), max_rounds=8, seed=3,
                party_class=party_cls,
            )
            cluster = build_cluster(config)
            cluster.network.duplicate_prob = dup_prob
            cluster.start()
            cluster.run_until_all_committed_round(7, timeout=120)
            cluster.check_safety()
            return [b.hash for b in cluster.party(1).output_log]

        assert run(0.0) == run(0.9)


class TestProtocolsUnderLoad:
    @pytest.mark.parametrize("party_cls", [ICC0Party, ICC2Party])
    def test_payloads_with_commands_and_filler(self, party_cls):
        def source(party, round, chain):
            return Payload(commands=(b"cmd-%d" % round,), filler_bytes=5000)

        config = ClusterConfig(
            n=7, t=2, delta_bound=0.3, epsilon=0.01,
            delay_model=FixedDelay(0.05), max_rounds=8, seed=2,
            party_class=party_cls, payload_source=source,
        )
        cluster = build_cluster(config)
        cluster.start()
        assert cluster.run_until_all_committed_round(6, timeout=120)
        cluster.check_safety()
        commands = cluster.party(1).output_commands()
        assert len(commands) >= 6
