"""Tests for the message pool and the block predicates of Section 3.4."""

from __future__ import annotations

import pytest

from repro.core import messages as msg
from repro.core.messages import (
    Authenticator,
    BeaconShare,
    Block,
    EMPTY_PAYLOAD,
    Finalization,
    FinalizationShare,
    GENESIS_BEACON,
    Notarization,
    NotarizationShare,
    Payload,
    ROOT_HASH,
)
from repro.core.pool import MessagePool
from repro.crypto.keyring import generate_keyrings


class Forge:
    """Produces correctly-signed artifacts for tests (n=4, t=1)."""

    def __init__(self, seed=0):
        self.rings = generate_keyrings(4, 1, seed=seed, backend="fast")

    def block(self, round=1, proposer=1, parent=ROOT_HASH, payload=EMPTY_PAYLOAD):
        return Block(round=round, proposer=proposer, parent_hash=parent, payload=payload)

    def auth(self, block):
        signed = msg.authenticator_message(block.round, block.proposer, block.hash)
        return Authenticator(
            round=block.round,
            proposer=block.proposer,
            block_hash=block.hash,
            signature=self.rings[block.proposer - 1].sign_auth(signed),
        )

    def notar_share(self, block, signer):
        signed = msg.notarization_message(block.round, block.proposer, block.hash)
        return NotarizationShare(
            round=block.round,
            proposer=block.proposer,
            block_hash=block.hash,
            signer=signer,
            share=self.rings[signer - 1].sign_notary_share(signed),
        )

    def notarization(self, block, signers=(1, 2, 3)):
        signed = msg.notarization_message(block.round, block.proposer, block.hash)
        shares = [self.rings[s - 1].sign_notary_share(signed) for s in signers]
        return Notarization(
            round=block.round,
            proposer=block.proposer,
            block_hash=block.hash,
            aggregate=self.rings[0].combine_notary(signed, shares),
        )

    def final_share(self, block, signer):
        signed = msg.finalization_message(block.round, block.proposer, block.hash)
        return FinalizationShare(
            round=block.round,
            proposer=block.proposer,
            block_hash=block.hash,
            signer=signer,
            share=self.rings[signer - 1].sign_final_share(signed),
        )

    def finalization(self, block, signers=(1, 2, 3)):
        signed = msg.finalization_message(block.round, block.proposer, block.hash)
        shares = [self.rings[s - 1].sign_final_share(signed) for s in signers]
        return Finalization(
            round=block.round,
            proposer=block.proposer,
            block_hash=block.hash,
            aggregate=self.rings[0].combine_final(signed, shares),
        )

    def beacon_share(self, round, signer, previous=GENESIS_BEACON):
        signed = msg.beacon_message(round, previous)
        return BeaconShare(
            round=round,
            signer=signer,
            share=self.rings[signer - 1].sign_beacon_share(signed),
        )

    def pool(self):
        return MessagePool(self.rings[0])


@pytest.fixture
def forge():
    return Forge()


class TestRootSpecialCase:
    def test_root_is_everything(self, forge):
        pool = forge.pool()
        assert pool.is_authentic(ROOT_HASH)
        assert pool.is_valid(ROOT_HASH)
        assert pool.is_notarized(ROOT_HASH)
        assert pool.is_finalized(ROOT_HASH)


class TestPredicateLadder:
    def test_block_alone_not_authentic(self, forge):
        pool = forge.pool()
        block = forge.block()
        pool.add(block)
        assert not pool.is_authentic(block.hash)

    def test_authentic_after_authenticator(self, forge):
        pool = forge.pool()
        block = forge.block()
        pool.add(block)
        pool.add(forge.auth(block))
        assert pool.is_authentic(block.hash)
        # Round-1 block's parent is root (notarized) => valid immediately.
        assert pool.is_valid(block.hash)

    def test_valid_requires_notarized_parent(self, forge):
        pool = forge.pool()
        parent = forge.block(round=1)
        child = forge.block(round=2, parent=parent.hash)
        pool.add(child)
        pool.add(forge.auth(child))
        pool.add(parent)
        pool.add(forge.auth(parent))
        assert not pool.is_valid(child.hash)  # parent not notarized yet
        pool.add(forge.notarization(parent))
        assert pool.is_valid(child.hash)

    def test_notarized_requires_valid(self, forge):
        """A notarization that arrives before the block/auth waits for them."""
        pool = forge.pool()
        block = forge.block()
        pool.add(forge.notarization(block))
        assert not pool.is_notarized(block.hash)
        pool.add(block)
        assert not pool.is_notarized(block.hash)
        pool.add(forge.auth(block))
        assert pool.is_notarized(block.hash)

    def test_finalized_ladder(self, forge):
        pool = forge.pool()
        block = forge.block()
        pool.add(forge.finalization(block))
        assert not pool.is_finalized(block.hash)
        pool.add(block)
        pool.add(forge.auth(block))
        assert pool.is_finalized(block.hash)

    def test_deep_chain_validates_transitively(self, forge):
        """A notarization arriving for round 1 unlocks a buffered subtree."""
        pool = forge.pool()
        b1 = forge.block(round=1)
        b2 = forge.block(round=2, parent=b1.hash)
        b3 = forge.block(round=3, parent=b2.hash)
        # Deliver out of order: deepest first.
        for b in (b3, b2, b1):
            pool.add(b)
            pool.add(forge.auth(b))
        pool.add(forge.notarization(b2))
        pool.add(forge.notarization(b1))  # this unlocks b2 -> then b3
        assert pool.is_notarized(b2.hash)
        assert pool.is_valid(b3.hash)

    def test_chain_reconstruction(self, forge):
        pool = forge.pool()
        b1 = forge.block(round=1)
        b2 = forge.block(round=2, parent=b1.hash)
        for b in (b1, b2):
            pool.add(b)
            pool.add(forge.auth(b))
        pool.add(forge.notarization(b1))
        assert [b.hash for b in pool.chain(b2.hash)] == [b1.hash, b2.hash]

    def test_chain_missing_ancestor_raises(self, forge):
        pool = forge.pool()
        b2 = forge.block(round=2, parent=b"\x07" * 32)
        pool.add(b2)
        with pytest.raises(KeyError):
            pool.chain(b2.hash)


class TestRejection:
    def test_bad_authenticator_dropped(self, forge):
        pool = forge.pool()
        block = forge.block(proposer=1)
        wrong_signer = Authenticator(
            round=1,
            proposer=1,
            block_hash=block.hash,
            signature=forge.rings[1].sign_auth(b"garbage"),
        )
        pool.add(block)
        assert not pool.add(wrong_signer)
        assert pool.stats.invalid_dropped == 1

    def test_bad_round_block_dropped(self, forge):
        pool = forge.pool()
        assert not pool.add(forge.block(round=0))
        assert not pool.add(forge.block(proposer=9))

    def test_share_signer_mismatch_dropped(self, forge):
        pool = forge.pool()
        block = forge.block()
        share = forge.notar_share(block, signer=2)
        lying = NotarizationShare(
            round=1, proposer=1, block_hash=block.hash, signer=3, share=share.share
        )
        assert not pool.add(lying)

    def test_duplicates_counted(self, forge):
        pool = forge.pool()
        block = forge.block()
        assert pool.add(block)
        assert not pool.add(block)
        assert pool.stats.duplicates == 1

    def test_unknown_type_raises(self, forge):
        with pytest.raises(TypeError):
            forge.pool().add("what is this")


class TestShareCounting:
    def test_combinable_notarization(self, forge):
        pool = forge.pool()
        block = forge.block()
        pool.add(block)
        pool.add(forge.auth(block))
        for signer in (1, 2):
            pool.add(forge.notar_share(block, signer))
        assert pool.combinable_notarization(1, quorum=3) is None
        pool.add(forge.notar_share(block, 3))
        found = pool.combinable_notarization(1, quorum=3)
        assert found is not None and found.hash == block.hash

    def test_combinable_skips_notarized(self, forge):
        pool = forge.pool()
        block = forge.block()
        pool.add(block)
        pool.add(forge.auth(block))
        for signer in (1, 2, 3):
            pool.add(forge.notar_share(block, signer))
        pool.add(forge.notarization(block))
        assert pool.combinable_notarization(1, quorum=3) is None

    def test_duplicate_shares_not_double_counted(self, forge):
        pool = forge.pool()
        block = forge.block()
        pool.add(block)
        pool.add(forge.auth(block))
        share = forge.notar_share(block, 2)
        pool.add(share)
        assert not pool.add(share)
        assert pool.notar_share_count(block.hash) == 1

    def test_combinable_finalization(self, forge):
        pool = forge.pool()
        block = forge.block()
        pool.add(block)
        pool.add(forge.auth(block))
        for signer in (1, 2, 3):
            pool.add(forge.final_share(block, signer))
        found = pool.combinable_finalization(1, quorum=3)
        assert found is not None and found.hash == block.hash


class TestBeaconShares:
    def test_verified_when_previous_known(self, forge):
        pool = forge.pool()
        assert pool.add(forge.beacon_share(1, 2))
        assert pool.beacon_share_count(1) == 1

    def test_future_round_buffered(self, forge):
        pool = forge.pool()
        r1_value = b"\x42" * 32
        share = forge.beacon_share(2, 3, previous=r1_value)
        pool.add(share)
        assert pool.beacon_share_count(2) == 0  # cannot verify yet
        pool.set_beacon_value(1, r1_value)
        assert pool.beacon_share_count(2) == 1

    def test_buffered_garbage_dropped_on_reveal(self, forge):
        pool = forge.pool()
        share = forge.beacon_share(2, 3, previous=b"\x01" * 32)
        pool.add(share)
        pool.set_beacon_value(1, b"\x02" * 32)  # share was for a different R_1
        assert pool.beacon_share_count(2) == 0
        assert pool.stats.invalid_dropped == 1

    def test_round_zero_value_is_genesis(self, forge):
        assert forge.pool().beacon_value(0) == GENESIS_BEACON

    def test_set_value_idempotent(self, forge):
        pool = forge.pool()
        pool.set_beacon_value(1, b"\x01" * 32)
        pool.set_beacon_value(1, b"\x02" * 32)  # ignored
        assert pool.beacon_value(1) == b"\x01" * 32
