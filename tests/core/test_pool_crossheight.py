"""Tests for cross-height batch flushing in the message pool.

The contract (see ``repro.core.pool``'s docstring): with
``flush_across_heights`` on (the default), a query flushes only the
pending shares for the keys it observes — stragglers for other heights
keep accumulating into larger RLC batches — while ``flush_min_batch``
and ``flush_deadline`` bound how long anything can sit unverified.
Query results and committed chains stay bit-identical in every mode.
"""

from __future__ import annotations

import pytest

from repro.core import messages as msg
from repro.core.messages import NotarizationShare
from repro.core.pool import MessagePool
from repro.obs import NULL_TRACER
from repro.sim.simulator import Simulation

from .test_pool import Forge


def _forged_notar_share(forge, block, signer):
    # Signed over a different message than the share's fields claim.
    other = forge.block(round=block.round + 7, proposer=3)
    signed = msg.notarization_message(other.round, other.proposer, other.hash)
    return NotarizationShare(
        round=block.round,
        proposer=block.proposer,
        block_hash=block.hash,
        signer=signer,
        share=forge.rings[signer - 1].sign_notary_share(signed),
    )


class TestTargetedFlush:
    def test_query_flushes_only_its_own_key(self):
        forge = Forge()
        pool = MessagePool(forge.rings[0], batch_verify=True)
        block_a = forge.block(round=1, proposer=1)
        block_b = forge.block(round=2, proposer=2)
        pool.add(block_a)
        pool.add(block_b)
        pool.add(forge.notar_share(block_a, 1))
        # A forged share for B stays queued — and undetected — until a
        # query observes B's key.
        pool.add(_forged_notar_share(forge, block_b, 2))
        dropped_before = pool.stats.invalid_dropped
        assert pool.notar_share_count(block_a.hash) == 1
        assert pool.stats.invalid_dropped == dropped_before  # B untouched
        assert pool.notar_share_count(block_b.hash) == 0
        assert pool.stats.invalid_dropped == dropped_before + 1

    def test_across_heights_off_flushes_everything(self):
        forge = Forge()
        pool = MessagePool(forge.rings[0], batch_verify=True)
        pool.flush_across_heights = False
        block_a = forge.block(round=1, proposer=1)
        block_b = forge.block(round=2, proposer=2)
        pool.add(block_a)
        pool.add(block_b)
        pool.add(_forged_notar_share(forge, block_b, 2))
        dropped_before = pool.stats.invalid_dropped
        # Querying A's key flushes the whole pending set in legacy mode.
        assert pool.notar_share_count(block_a.hash) == 0
        assert pool.stats.invalid_dropped == dropped_before + 1

    def test_query_results_identical_in_both_modes(self):
        forge = Forge()
        across = MessagePool(forge.rings[0], batch_verify=True)
        legacy = MessagePool(forge.rings[0], batch_verify=True)
        legacy.flush_across_heights = False
        blocks = [forge.block(round=r, proposer=1 + (r - 1) % 4) for r in (1, 2, 3)]
        for pool in (across, legacy):
            for block in blocks:
                pool.add(block)
            for block in blocks:
                for signer in (1, 2, 3):
                    pool.add(forge.notar_share(block, signer))
                pool.add(forge.final_share(block, 1))
        for block in blocks:
            assert (
                across.notar_share_count(block.hash)
                == legacy.notar_share_count(block.hash)
                == 3
            )
            assert [s.signer for s in across.notar_shares(block.hash)] == [
                s.signer for s in legacy.notar_shares(block.hash)
            ]
            assert (
                across.final_share_count(block.hash)
                == legacy.final_share_count(block.hash)
                == 1
            )
        assert across.artifact_count() == legacy.artifact_count()


class TestSizeTrigger:
    def test_flush_min_batch_flushes_inside_add(self):
        forge = Forge()
        pool = MessagePool(forge.rings[0], batch_verify=True)
        pool.flush_min_batch = 2
        block = forge.block()
        pool.add(block)
        dropped_before = pool.stats.invalid_dropped
        pool.add(_forged_notar_share(forge, block, 2))
        assert pool.stats.invalid_dropped == dropped_before  # 1 < min batch
        pool.add(forge.notar_share(block, 1))  # hits the size trigger
        assert pool.stats.invalid_dropped == dropped_before + 1

    def test_zero_min_batch_never_triggers(self):
        forge = Forge()
        pool = MessagePool(forge.rings[0], batch_verify=True)
        assert pool.flush_min_batch == 0
        block = forge.block()
        pool.add(block)
        dropped_before = pool.stats.invalid_dropped
        for signer in (1, 2, 3):
            pool.add(_forged_notar_share(forge, block, signer))
        assert pool.stats.invalid_dropped == dropped_before  # still queued


class TestDeadlineTrigger:
    def _timed_pool(self, forge):
        pool = MessagePool(forge.rings[0], batch_verify=True)
        sim = Simulation(seed=0)
        pool.bind_tracing(NULL_TRACER, sim, party=1, protocol="test")
        return pool, sim

    def test_deadline_flushes_stale_pending(self):
        forge = Forge()
        pool, sim = self._timed_pool(forge)
        pool.flush_deadline = 1.0
        block = forge.block()
        pool.add(block)
        dropped_before = pool.stats.invalid_dropped
        pool.add(_forged_notar_share(forge, block, 2))
        assert pool.stats.invalid_dropped == dropped_before  # fresh
        sim.now = 5.0
        pool.add(forge.notar_share(block, 1))  # deadline exceeded: flush
        assert pool.stats.invalid_dropped == dropped_before + 1

    def test_no_deadline_means_no_time_trigger(self):
        forge = Forge()
        pool, sim = self._timed_pool(forge)
        assert pool.flush_deadline is None
        block = forge.block()
        pool.add(block)
        dropped_before = pool.stats.invalid_dropped
        pool.add(_forged_notar_share(forge, block, 2))
        sim.now = 1e6
        pool.add(forge.notar_share(block, 1))
        assert pool.stats.invalid_dropped == dropped_before


class TestClusterConfigWiring:
    def test_invalid_flush_settings_rejected(self):
        from repro.core import ClusterConfig
        from repro.sim.delays import FixedDelay

        with pytest.raises(ValueError, match="crypto_flush_min_batch"):
            ClusterConfig(
                n=4, t=1, delta_bound=0.3, epsilon=0.01,
                delay_model=FixedDelay(0.05), crypto_flush_min_batch=-1,
            )
        with pytest.raises(ValueError, match="crypto_flush_deadline"):
            ClusterConfig(
                n=4, t=1, delta_bound=0.3, epsilon=0.01,
                delay_model=FixedDelay(0.05), crypto_flush_deadline=-0.1,
            )

    def _run(self, **overrides):
        from repro.core import ClusterConfig, build_cluster
        from repro.sim.delays import FixedDelay

        config = ClusterConfig(
            n=4, t=1, delta_bound=0.3, epsilon=0.01,
            delay_model=FixedDelay(0.05), max_rounds=6, seed=3,
            crypto_backend="real", **overrides,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_round(5, timeout=120)
        cluster.check_safety()
        return cluster

    def test_cluster_bit_identical_across_flush_modes(self):
        reference = self._run()
        for overrides in (
            {"crypto_flush_across_heights": False},
            {"crypto_flush_min_batch": 4},
            {"crypto_flush_deadline": 0.2},
        ):
            other = self._run(**overrides)
            assert other.party(1).committed_hashes == reference.party(1).committed_hashes
            assert other.min_committed_round() == reference.min_committed_round()
            assert other.sim.now == reference.sim.now
