"""Tests for cluster assembly helpers and a long soak run."""

from __future__ import annotations

import pytest

from repro.core import ClusterConfig, build_cluster, run_happy_path
from repro.sim.delays import FixedDelay, UniformDelay


class TestClusterHelpers:
    def test_party_lookup(self):
        cluster = run_happy_path(n=4, rounds=2)
        assert cluster.party(3).index == 3

    def test_honest_parties_excludes_corrupt(self):
        config = ClusterConfig(
            n=4, t=1, delay_model=FixedDelay(0.05), corrupt={2: None}, seed=1
        )
        cluster = build_cluster(config)
        assert [p.index for p in cluster.honest_parties] == [1, 3, 4]

    def test_run_until_timeout_returns_false(self):
        config = ClusterConfig(
            n=4, t=1, delay_model=FixedDelay(0.05), max_rounds=3, seed=1
        )
        cluster = build_cluster(config)
        cluster.start()
        assert not cluster.run_until_all_committed_round(100, timeout=2.0)

    def test_check_safety_detects_forged_divergence(self):
        cluster = run_happy_path(n=4, rounds=3)
        # Forge a divergent log on one party.
        victim = cluster.party(2)
        victim.output_log[0] = victim.output_log[1]
        with pytest.raises(AssertionError):
            cluster.check_safety()

    def test_min_max_committed(self):
        cluster = run_happy_path(n=4, rounds=4)
        assert cluster.min_committed_round() <= cluster.max_committed_round()
        assert cluster.min_committed_round() >= 4

    def test_metrics_bytes_conserved_across_kinds(self):
        """Per-party byte totals equal the per-kind decomposition."""
        cluster = run_happy_path(n=4, rounds=5)
        total_by_party = sum(cluster.metrics.bytes_sent.values())
        total_by_kind = sum(cluster.metrics.bytes_by_kind.values())
        assert total_by_party == total_by_kind
        msgs_by_party = sum(cluster.metrics.msgs_sent.values())
        msgs_by_kind = sum(cluster.metrics.msgs_by_kind.values())
        assert msgs_by_party == msgs_by_kind


class TestSoak:
    def test_200_round_soak_with_gc_and_jitter(self):
        """A longer run: jittered network, GC on, full commit coverage."""
        config = ClusterConfig(
            n=4, t=1, delta_bound=0.4, epsilon=0.005,
            delay_model=UniformDelay(0.005, 0.08), seed=77,
            max_rounds=200, gc_depth=8,
        )
        cluster = build_cluster(config)
        cluster.start()
        assert cluster.run_until_all_committed_round(200, timeout=600)
        cluster.check_safety()
        observer = cluster.party(1)
        rounds = [b.round for b in observer.output_log]
        assert rounds == list(range(1, 201))
        # GC kept the pool bounded.
        assert observer.pool.artifact_count() < 700
