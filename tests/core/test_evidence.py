"""Tests for equivocation evidence (accountability)."""

from __future__ import annotations

import pytest

from repro.adversary import EquivocatingProposerMixin, corrupt_class
from repro.core import ClusterConfig, build_cluster
from repro.core.evidence import (
    EquivocationEvidence,
    attach_monitors,
    verify_evidence,
)
from repro.core.icc0 import ICC0Party
from repro.core.messages import Authenticator, Payload
from repro.sim.delays import FixedDelay
from tests.core.test_pool import Forge


class TestVerification:
    def test_valid_evidence(self):
        forge = Forge()
        block_a = forge.block(round=1, proposer=2, payload=Payload(commands=(b"a",)))
        block_b = forge.block(round=1, proposer=2)
        evidence = EquivocationEvidence(
            round=1, proposer=2, first=forge.auth(block_a), second=forge.auth(block_b)
        )
        assert verify_evidence(forge.rings[0], evidence)

    def test_same_block_twice_is_not_evidence(self):
        forge = Forge()
        block = forge.block(round=1, proposer=2)
        evidence = EquivocationEvidence(
            round=1, proposer=2, first=forge.auth(block), second=forge.auth(block)
        )
        assert not verify_evidence(forge.rings[0], evidence)

    def test_forged_signature_rejected(self):
        forge = Forge()
        block_a = forge.block(round=1, proposer=2, payload=Payload(commands=(b"a",)))
        block_b = forge.block(round=1, proposer=2)
        real = forge.auth(block_a)
        # Frame party 3 with party 2's signature.
        framed = Authenticator(
            round=1, proposer=3, block_hash=block_b.hash, signature=real.signature
        )
        evidence = EquivocationEvidence(round=1, proposer=3, first=real, second=framed)
        assert not verify_evidence(forge.rings[0], evidence)

    def test_mismatched_round_rejected(self):
        forge = Forge()
        block_a = forge.block(round=1, proposer=2, payload=Payload(commands=(b"a",)))
        block_b = forge.block(round=2, proposer=2)
        evidence = EquivocationEvidence(
            round=1, proposer=2, first=forge.auth(block_a), second=forge.auth(block_b)
        )
        assert not verify_evidence(forge.rings[0], evidence)


class TestMonitor:
    def run_with_equivocators(self, equivocators=(1,), rounds=10, seed=4):
        equiv = corrupt_class(ICC0Party, EquivocatingProposerMixin)
        config = ClusterConfig(
            n=7, t=2, delta_bound=0.3, epsilon=0.01,
            delay_model=FixedDelay(0.05), max_rounds=rounds, seed=seed,
            corrupt={i: equiv for i in equivocators},
        )
        cluster = build_cluster(config)
        monitors = attach_monitors(cluster)
        cluster.start()
        cluster.run_until_all_committed_round(rounds - 2, timeout=300)
        cluster.check_safety()
        return cluster, monitors

    def test_equivocator_caught_by_every_monitor(self):
        cluster, monitors = self.run_with_equivocators(equivocators=(1,))
        # Equivocating proposals happen every round party 1 proposes; every
        # honest party that saw both twins holds the same verdict.
        culprit_sets = [m.culprits() for m in monitors if m.evidence]
        assert culprit_sets, "nobody collected evidence"
        for culprits in culprit_sets:
            assert culprits == {1}

    def test_evidence_is_transferable(self):
        """Evidence collected by one party verifies under another's keys."""
        cluster, monitors = self.run_with_equivocators(equivocators=(1,))
        collector = next(m for m in monitors if m.evidence)
        other_keys = cluster.party(7).keys
        for evidence in collector.evidence:
            assert verify_evidence(other_keys, evidence)

    def test_no_false_accusations_in_clean_run(self):
        config = ClusterConfig(
            n=7, t=2, delta_bound=0.3, epsilon=0.01,
            delay_model=FixedDelay(0.05), max_rounds=10, seed=5,
        )
        cluster = build_cluster(config)
        monitors = attach_monitors(cluster)
        cluster.start()
        cluster.run_until_all_committed_round(8, timeout=120)
        assert all(not m.evidence for m in monitors)

    def test_one_report_per_round_per_culprit(self):
        cluster, monitors = self.run_with_equivocators(equivocators=(1, 2), rounds=12)
        for monitor in monitors:
            keys = [(e.round, e.proposer) for e in monitor.evidence]
            assert len(keys) == len(set(keys))
