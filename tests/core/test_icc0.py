"""Integration tests for Protocol ICC0 — fault-free behaviour and timing."""

from __future__ import annotations

import pytest

from repro.core import ClusterConfig, Payload, build_cluster, run_happy_path
from repro.sim.delays import FixedDelay, PartialSynchrony, UniformDelay


class TestHappyPath:
    def test_commits_and_safety(self):
        cluster = run_happy_path(n=4, rounds=5)
        cluster.check_safety()
        assert all(p.k_max >= 5 for p in cluster.parties)

    def test_identical_outputs(self):
        cluster = run_happy_path(n=4, rounds=5)
        logs = [p.committed_hashes[:5] for p in cluster.parties]
        assert all(log == logs[0] for log in logs)

    def test_one_block_per_round(self):
        """The committed chain has exactly one block at every depth."""
        cluster = run_happy_path(n=4, rounds=6)
        rounds = [b.round for b in cluster.party(1).output_log]
        assert rounds == list(range(1, len(rounds) + 1))

    def test_deterministic_given_seed(self):
        a = run_happy_path(n=4, rounds=5, seed=3)
        b = run_happy_path(n=4, rounds=5, seed=3)
        assert a.party(1).committed_hashes == b.party(1).committed_hashes

    def test_different_seeds_choose_different_leaders(self):
        a = run_happy_path(n=7, rounds=5, seed=1)
        b = run_happy_path(n=7, rounds=5, seed=2)
        assert [x.proposer for x in a.party(1).output_log] != [
            x.proposer for x in b.party(1).output_log
        ]

    def test_various_sizes(self):
        for n in (1, 2, 4, 10):
            cluster = run_happy_path(n=n, rounds=3, seed=n)
            cluster.check_safety()
            assert cluster.min_committed_round() >= 3


class TestSteadyStateTiming:
    def test_round_time_is_two_delta(self):
        """Reciprocal throughput 2δ with honest leader + synchrony (§1)."""
        delta = 0.05
        config = ClusterConfig(
            n=4, t=1, delta_bound=0.5, epsilon=0.0005,
            delay_model=FixedDelay(delta), max_rounds=12, seed=1,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_round(10, timeout=60)
        durations = cluster.metrics.round_durations(1)
        steady = [v for k, v in durations.items() if 2 <= k <= 10]
        for d in steady:
            assert d == pytest.approx(2 * delta, rel=0.05)

    def test_latency_is_three_delta(self):
        delta = 0.05
        config = ClusterConfig(
            n=4, t=1, delta_bound=0.5, epsilon=0.0005,
            delay_model=FixedDelay(delta), max_rounds=12, seed=1,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_round(10, timeout=60)
        for latency in cluster.metrics.commit_latencies():
            assert latency == pytest.approx(3 * delta, rel=0.05)

    def test_only_leader_proposes_under_synchrony(self):
        """With an honest leader and synchrony, nobody else broadcasts a
        block (the Δprop delays do their job, Section 3.5)."""
        config = ClusterConfig(
            n=7, t=2, delta_bound=0.5, epsilon=0.01,
            delay_model=FixedDelay(0.05), max_rounds=10, seed=2,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_round(9, timeout=60)
        proposals = cluster.metrics.counters["blocks-proposed"]
        leader_proposals = cluster.metrics.counters["leader-proposals"]
        assert proposals == leader_proposals

    def test_one_distinct_block_per_synchronous_round(self):
        """'the total number of distinct blocks broadcast by all the honest
        parties is typically O(1)' (Section 1) — with synchrony and honest
        leaders it is exactly one per round."""
        config = ClusterConfig(
            n=7, t=2, delta_bound=0.5, epsilon=0.01,
            delay_model=FixedDelay(0.05), max_rounds=10, seed=3,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_round(9, timeout=60)
        for round in range(1, 10):
            distinct = {
                h
                for party in cluster.parties
                for h in party.pool._blocks_by_round.get(round, ())
            }
            assert len(distinct) == 1

    def test_epsilon_throttles_round_rate(self):
        """The governor ε slows rounds down (Section 3.5)."""

        def round_time(epsilon):
            config = ClusterConfig(
                n=4, t=1, delta_bound=0.5, epsilon=epsilon,
                delay_model=FixedDelay(0.02), max_rounds=8, seed=1,
            )
            cluster = build_cluster(config)
            cluster.start()
            cluster.run_until_all_committed_round(6, timeout=60)
            durations = cluster.metrics.round_durations(1)
            return sum(durations.values()) / len(durations)

        assert round_time(0.5) > round_time(0.01) + 0.3


class TestPayloads:
    def test_commands_flow_through(self):
        def source(party, round, chain):
            return Payload(commands=(f"cmd-{round}-{party.index}".encode(),))

        cluster = run_happy_path(n=4, rounds=5, payload_source=source)
        commands = cluster.party(1).output_commands()
        assert len(commands) >= 5
        assert all(c.startswith(b"cmd-") for c in commands)

    def test_proposer_sees_parent_chain(self):
        seen_chains = []

        def source(party, round, chain):
            seen_chains.append((round, [b.round for b in chain]))
            return Payload()

        run_happy_path(n=4, rounds=4, payload_source=source)
        for round, chain_rounds in seen_chains:
            assert chain_rounds == list(range(1, round))


class TestJitteredNetwork:
    def test_safety_and_liveness_with_jitter(self):
        config = ClusterConfig(
            n=7, t=2, delta_bound=0.3, epsilon=0.02,
            delay_model=UniformDelay(0.01, 0.2), max_rounds=15, seed=4,
        )
        cluster = build_cluster(config)
        cluster.start()
        assert cluster.run_until_all_committed_round(12, timeout=300)
        cluster.check_safety()


class TestPartialSynchrony:
    def test_commits_after_gst(self):
        """Asynchronous until GST: safety always, liveness after GST."""
        config = ClusterConfig(
            n=4, t=1, delta_bound=0.5, epsilon=0.02, seed=5,
            delay_model=PartialSynchrony(base=FixedDelay(0.05), gst=20.0, max_async=8.0),
            max_rounds=40,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_for(19.0)
        cluster.check_safety()
        committed_before = cluster.max_committed_round()
        cluster.run_for(30.0)
        cluster.check_safety()
        assert cluster.min_committed_round() > committed_before

    def test_partition_heals(self):
        """A partitioned minority catches up after the partition heals."""
        config = ClusterConfig(
            n=4, t=1, delta_bound=0.5, epsilon=0.02, seed=6,
            delay_model=FixedDelay(0.05), max_rounds=60,
        )
        cluster = build_cluster(config)
        cluster.network.add_partition({4}, heal_time=10.0)
        cluster.start()
        cluster.run_for(9.0)
        assert cluster.party(4).k_max == 0  # cut off
        assert cluster.party(1).k_max > 10  # majority continues
        cluster.run_for(30.0)
        cluster.check_safety()
        assert cluster.party(4).k_max >= cluster.party(1).k_max - 2


class TestEdgeCases:
    def test_single_party_cluster(self):
        cluster = run_happy_path(n=1, rounds=4)
        assert cluster.party(1).k_max >= 4

    def test_max_rounds_stops_protocol(self):
        config = ClusterConfig(
            n=4, t=1, delta_bound=0.5, epsilon=0.01,
            delay_model=FixedDelay(0.05), max_rounds=5, seed=1,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_for(60.0)
        assert all(p.k_max == 5 for p in cluster.parties)
        assert all(p.round <= 6 for p in cluster.parties)

    def test_corrupt_count_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n=4, t=0, corrupt={1: None})
