"""End-to-end ICC2 test: inconsistent reliable-broadcast dealers.

A Byzantine proposer can try to disperse fragments that do not all come
from one Reed–Solomon encoding (under a single Merkle commitment).  The
RBC consistency check (re-encode and compare roots) must reject the
instance at every honest party, and the ICC round must still complete via
the next-ranked proposer — the protocol-level consequence of the RBC's
consistency property.
"""

from __future__ import annotations

import pytest

from repro.core import ClusterConfig, build_cluster
from repro.core.icc2 import ICC2Party
from repro.core.serialize import serialize_block
from repro.erasure.merkle import MerkleTree
from repro.erasure.reed_solomon import encode
from repro.rbc.protocol import Fragment, RbcMessage
from repro.sim.delays import FixedDelay


class InconsistentDealerICC2(ICC2Party):
    """Disperses a mixed encoding: half the fragments encode a different
    block, all committed under one Merkle root."""

    def _disseminate_block(self, block, auth, parent_notarization):
        data = serialize_block(block)
        other = serialize_block(
            type(block)(
                round=block.round,
                proposer=block.proposer,
                parent_hash=block.parent_hash,
                payload=type(block.payload)(commands=(b"evil-twin",)),
            )
        )
        params = self.rbc.params
        good = encode(data.ljust(len(other), b"\x00"), params)
        evil = encode(other.ljust(len(data), b"\x00"), params)
        mixed = good[: self.params.n // 2] + evil[self.params.n // 2 :]
        tree = MerkleTree(mixed)
        for receiver in range(1, self.params.n + 1):
            if receiver == self.index:
                continue
            self.network.send(
                self.index,
                receiver,
                RbcMessage(
                    dealer=self.index,
                    root=tree.root,
                    data_length=max(len(data), len(other)),
                    phase="send",
                    fragment=Fragment(
                        index=receiver - 1,
                        data=mixed[receiver - 1],
                        proof=tree.proof(receiver - 1),
                    ),
                ),
            )
        # Small artifacts still go out, making the attack look plausible.
        if auth is not None:
            self._broadcast(auth)
        if parent_notarization is not None:
            self._broadcast(parent_notarization)


class TestInconsistentDealer:
    def make_cluster(self, seed=6):
        return build_cluster(
            ClusterConfig(
                n=7, t=2, delta_bound=0.3, epsilon=0.01,
                delay_model=FixedDelay(0.05), max_rounds=12, seed=seed,
                party_class=ICC2Party,
                corrupt={1: InconsistentDealerICC2, 2: InconsistentDealerICC2},
            )
        )

    def test_liveness_survives(self):
        cluster = self.make_cluster()
        cluster.start()
        assert cluster.run_until_all_committed_round(10, timeout=300)
        cluster.check_safety()

    def test_inconsistent_blocks_never_enter_pools(self):
        cluster = self.make_cluster()
        cluster.start()
        cluster.run_for(60.0)
        # No honest party ever validated a block proposed by the attackers
        # (their dispersals are rejected before deserialization).
        for party in cluster.honest_parties:
            for block in party.output_log:
                assert block.proposer not in (1, 2)

    def test_attackers_rounds_filled_by_others(self):
        cluster = self.make_cluster()
        cluster.start()
        cluster.run_for(60.0)
        observer = cluster.honest_parties[0]
        rounds = [b.round for b in observer.output_log]
        assert rounds == list(range(1, len(rounds) + 1))
        assert len(rounds) >= 10
