"""Tests for the pool's lazy batched share verification.

The contract (see ``repro.core.pool``'s docstring): with ``batch_verify``
on, crypto checks are deferred to the next query point, results are
bit-identical to eager verification, forged shares are dropped at flush,
and each flush emits a ``crypto.batch_verify`` trace event.
"""

from __future__ import annotations

from repro.core import messages as msg
from repro.core.messages import BeaconShare, GENESIS_BEACON, NotarizationShare
from repro.core.pool import MessagePool
from repro.crypto.keyring import generate_keyrings
from repro.obs import Tracer
from repro.sim.simulator import Simulation

from .test_pool import Forge


def _pools(seed=0, backend="fast"):
    rings = generate_keyrings(4, 1, seed=seed, backend=backend, group_profile="test")
    return (
        rings,
        MessagePool(rings[0], batch_verify=True),
        MessagePool(rings[0], batch_verify=False),
    )


class TestLazyEagerParity:
    def test_notar_shares_identical(self):
        forge = Forge()
        lazy = MessagePool(forge.rings[0], batch_verify=True)
        eager = MessagePool(forge.rings[0], batch_verify=False)
        block = forge.block()
        for pool in (lazy, eager):
            assert pool.add(block)
        for signer in (1, 2, 3):
            share = forge.notar_share(block, signer)
            assert lazy.add(share)
            assert eager.add(share)
        # The query flushes the lazy pool; state must now match eagerly.
        assert lazy.notar_share_count(block.hash) == eager.notar_share_count(block.hash) == 3
        assert [s.signer for s in lazy.notar_shares(block.hash)] == [
            s.signer for s in eager.notar_shares(block.hash)
        ]
        assert lazy.artifact_count() == eager.artifact_count()

    def test_final_and_beacon_parity(self):
        forge = Forge()
        lazy = MessagePool(forge.rings[0], batch_verify=True)
        eager = MessagePool(forge.rings[0], batch_verify=False)
        block = forge.block()
        signed = msg.beacon_message(1, GENESIS_BEACON)
        for pool in (lazy, eager):
            pool.add(block)
            for signer in (1, 2):
                pool.add(forge.final_share(block, signer))
                pool.add(
                    BeaconShare(
                        round=1,
                        signer=signer,
                        share=forge.rings[signer - 1].sign_beacon_share(signed),
                    )
                )
        assert lazy.final_share_count(block.hash) == eager.final_share_count(block.hash) == 2
        assert lazy.beacon_share_count(1) == eager.beacon_share_count(1) == 2

    def test_duplicate_of_pending_share_rejected(self):
        forge = Forge()
        pool = MessagePool(forge.rings[0], batch_verify=True)
        share = forge.notar_share(forge.block(), 2)
        assert pool.add(share)          # queued, not yet verified
        assert not pool.add(share)      # duplicate detected against the queue
        assert pool.stats.duplicates == 1


class TestForgedSharesAtFlush:
    def _forged_notar_share(self, forge, block, signer):
        # Signed over a different message than the share's fields claim.
        other = forge.block(round=2)
        signed = msg.notarization_message(other.round, other.proposer, other.hash)
        return NotarizationShare(
            round=block.round,
            proposer=block.proposer,
            block_hash=block.hash,
            signer=signer,
            share=forge.rings[signer - 1].sign_notary_share(signed),
        )

    def test_forged_share_dropped_at_flush(self):
        forge = Forge()
        pool = MessagePool(forge.rings[0], batch_verify=True)
        block = forge.block()
        pool.add(block)
        assert pool.add(forge.notar_share(block, 1))
        assert pool.add(self._forged_notar_share(forge, block, 2))  # queued!
        assert pool.add(forge.notar_share(block, 3))
        dropped_before = pool.stats.invalid_dropped
        assert pool.notar_share_count(block.hash) == 2  # flush happened here
        assert pool.stats.invalid_dropped == dropped_before + 1
        assert {s.signer for s in pool.notar_shares(block.hash)} == {1, 3}

    def test_flush_emits_trace_events(self):
        forge = Forge()
        pool = MessagePool(forge.rings[0], batch_verify=True)
        tracer = Tracer()
        pool.bind_tracing(tracer, Simulation(), party=1, protocol="test")
        block = forge.block()
        pool.add(block)
        pool.add(forge.notar_share(block, 1))
        pool.add(self._forged_notar_share(forge, block, 2))
        pool.flush_pending()
        kinds = [e.kind for e in tracer.events()]
        assert "crypto.batch_verify" in kinds
        assert "pool.invalid" in kinds
        batch_event = next(e for e in tracer.events() if e.kind == "crypto.batch_verify")
        assert batch_event.payload["scheme"] == "notary"
        assert batch_event.payload["count"] == 2
        assert batch_event.payload["invalid"] == 1

    def test_real_backend_forged_share(self):
        rings = generate_keyrings(4, 1, seed=7, backend="real", group_profile="test")
        pool = MessagePool(rings[0], batch_verify=True)
        signed = msg.notarization_message(1, 1, b"\x11" * 32)
        good = NotarizationShare(
            round=1, proposer=1, block_hash=b"\x11" * 32, signer=2,
            share=rings[1].sign_notary_share(signed),
        )
        forged = NotarizationShare(
            round=1, proposer=1, block_hash=b"\x11" * 32, signer=3,
            share=rings[2].sign_notary_share(b"some-other-message"),
        )
        assert pool.add(good)
        assert pool.add(forged)  # passes structural checks, queued
        assert pool.notar_share_count(b"\x11" * 32) == 1
        assert {s.signer for s in pool.notar_shares(b"\x11" * 32)} == {2}


class TestBeaconReveal:
    def test_buffered_shares_verified_at_reveal(self):
        forge = Forge()
        pool = MessagePool(forge.rings[0], batch_verify=True)
        value1 = b"\x22" * 32
        signed2 = msg.beacon_message(2, value1)
        # Round-2 shares arrive before the round-1 beacon value is known.
        for signer in (1, 2):
            assert pool.add(
                BeaconShare(
                    round=2, signer=signer,
                    share=forge.rings[signer - 1].sign_beacon_share(signed2),
                )
            )
        assert pool.stats.buffered_beacon_shares == 2
        pool.set_beacon_value(1, value1)
        assert pool.beacon_share_count(2) == 2

    def test_garbage_buffered_share_dropped_at_reveal(self):
        forge = Forge()
        pool = MessagePool(forge.rings[0], batch_verify=True)
        value1 = b"\x33" * 32
        garbage = BeaconShare(
            round=2, signer=1,
            share=forge.rings[0].sign_beacon_share(b"not-the-beacon-message"),
        )
        assert pool.add(garbage)  # buffered: previous value unknown
        dropped_before = pool.stats.invalid_dropped
        pool.set_beacon_value(1, value1)
        assert pool.stats.invalid_dropped == dropped_before + 1
        assert pool.beacon_share_count(2) == 0


class TestClusterToggleParity:
    """Experiment outputs are bit-identical with the fast path on or off."""

    def _run(self, crypto_batch, backend):
        from repro.core import ClusterConfig, build_cluster
        from repro.sim.delays import FixedDelay

        config = ClusterConfig(
            n=4, t=1, delta_bound=0.3, epsilon=0.01,
            delay_model=FixedDelay(0.05), max_rounds=6, seed=3,
            crypto_backend=backend, crypto_batch=crypto_batch,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_round(5, timeout=120)
        cluster.check_safety()
        return cluster

    def test_fast_backend_bit_identical(self):
        on = self._run(crypto_batch=True, backend="fast")
        off = self._run(crypto_batch=False, backend="fast")
        assert on.party(1).committed_hashes == off.party(1).committed_hashes
        assert on.min_committed_round() == off.min_committed_round()
        assert on.sim.now == off.sim.now

    def test_real_backend_bit_identical(self):
        on = self._run(crypto_batch=True, backend="real")
        off = self._run(crypto_batch=False, backend="real")
        assert on.party(1).committed_hashes == off.party(1).committed_hashes
        assert on.party(1).committed_hashes  # the run actually committed
        assert on.sim.now == off.sim.now

