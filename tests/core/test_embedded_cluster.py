"""Tests for the embeddable cluster API (ClusterHandle / embed_cluster).

The pin the sharding subsystem stands on: two clusters embedded in ONE
Simulation must produce exactly the finalized chains each would produce
running standalone with the same seed — under fixed *and* random delay
models (the latter proves the per-cluster RNG streams are isolated, not
merely unused).  Plus: namespaced trace/metric streams stay separate,
the simulation's own sinks are restored after embedding, and config
validation rejects wrong protocol types.
"""

from __future__ import annotations

import pytest

from repro.core import ClusterConfig, ClusterHandle, build_cluster, embed_cluster
from repro.obs import Meter, Tracer
from repro.sim.delays import FixedDelay, UniformDelay
from repro.sim.simulator import Simulation


def _config(seed, delay_model, rounds=10):
    return ClusterConfig(
        n=4, t=1, delta_bound=0.3, epsilon=0.005,
        delay_model=delay_model, seed=seed, max_rounds=rounds,
    )


def _committed_hashes(cluster):
    return cluster.honest_parties[0].committed_hashes


def _standalone_chain(seed, delay_model, rounds=10):
    cluster = build_cluster(_config(seed, delay_model, rounds))
    cluster.start()
    cluster.sim.run(until=120.0)
    cluster.check_safety()
    return _committed_hashes(cluster)


class TestBitIdenticalEmbedding:
    @pytest.mark.parametrize(
        "delay_model_factory",
        [lambda: FixedDelay(0.05), lambda: UniformDelay(0.01, 0.12)],
        ids=["fixed-delay", "uniform-delay"],
    )
    def test_two_embedded_equal_two_standalone(self, delay_model_factory):
        sim = Simulation(seed=999)
        handles = {}
        for name, seed in (("alpha", 11), ("beta", 22)):
            handles[name] = embed_cluster(
                name, _config(seed, delay_model_factory()), sim
            )
            handles[name].start()
        sim.run(until=120.0)
        for handle in handles.values():
            handle.cluster.check_safety()

        for name, seed in (("alpha", 11), ("beta", 22)):
            embedded = _committed_hashes(handles[name].cluster)
            standalone = _standalone_chain(seed, delay_model_factory())
            assert embedded, f"{name}: no commits"
            assert embedded == standalone, (
                f"{name}: embedded chain diverged from standalone"
            )

    def test_sibling_does_not_perturb(self):
        """Adding a THIRD cluster must not change the other two's chains —
        per-cluster RNG streams draw independently of who else runs."""

        def run(names_seeds):
            sim = Simulation(seed=5)
            handles = {}
            for name, seed in names_seeds:
                handles[name] = embed_cluster(
                    name, _config(seed, UniformDelay(0.01, 0.12)), sim
                )
                handles[name].start()
            sim.run(until=120.0)
            return {n: _committed_hashes(h.cluster) for n, h in handles.items()}

        two = run([("alpha", 11), ("beta", 22)])
        three = run([("alpha", 11), ("beta", 22), ("gamma", 33)])
        assert two["alpha"] == three["alpha"]
        assert two["beta"] == three["beta"]


class TestNamespacedStreams:
    def test_traces_and_metrics_are_separated(self):
        sim = Simulation(seed=1)
        sim.tracer = Tracer()
        sim.meter = Meter()
        a = embed_cluster("alpha", _config(11, FixedDelay(0.05)), sim)
        b = embed_cluster("beta", _config(22, FixedDelay(0.05)), sim)
        a.start()
        b.start()
        sim.run(until=60.0)

        a_commits = a.events("icc.block.committed")
        b_commits = b.events("icc.block.committed")
        assert a_commits and b_commits
        assert all(e.protocol.startswith("alpha/") for e in a_commits)
        assert all(e.protocol.startswith("beta/") for e in b_commits)
        # Each handle sees only its own slice of the shared sink.
        assert len(a_commits) + len(b_commits) == len(
            sim.tracer.events("icc.block.committed")
        )

        assert a.counter("net.messages") > 0
        assert b.counter("net.messages") > 0
        assert sim.meter.counter_value("alpha/net.messages") == a.counter(
            "net.messages"
        )

    def test_sim_sinks_restored_after_embedding(self):
        sim = Simulation(seed=1)
        tracer, meter = Tracer(), Meter()
        sim.tracer = tracer
        sim.meter = meter
        embed_cluster("alpha", _config(11, FixedDelay(0.05)), sim)
        assert sim.tracer is tracer
        assert sim.meter is meter

    def test_handle_delegation(self):
        sim = Simulation(seed=1)
        handle = embed_cluster("alpha", _config(11, FixedDelay(0.05)), sim)
        assert isinstance(handle, ClusterHandle)
        assert handle.name == "alpha"
        assert handle.sim is sim
        assert handle.config.namespace == "alpha"
        assert handle.cluster.handle is handle


class TestConfigValidation:
    def test_wrong_delay_policy_type(self):
        with pytest.raises(TypeError):
            ClusterConfig(n=4, t=1, protocol_delays=0.75)

    def test_wrong_tracer_type(self):
        with pytest.raises(TypeError):
            ClusterConfig(n=4, t=1, tracer="trace.jsonl")

    def test_wrong_meter_type(self):
        with pytest.raises(TypeError):
            ClusterConfig(n=4, t=1, meter=object())

    def test_bad_namespace(self):
        with pytest.raises(ValueError):
            ClusterConfig(n=4, t=1, namespace="a/b")
        with pytest.raises(ValueError):
            ClusterConfig(n=4, t=1, namespace="")
