"""Edge cases of the catch-up subprotocol's requester and responder."""

from __future__ import annotations

import pytest

from repro.core import ClusterConfig, build_cluster
from repro.core.catchup import BeaconLink, CatchupParty, SyncRequest, SyncResponse
from repro.sim.delays import FixedDelay


def ready_cluster(rounds=8, seed=1, gc_depth=None):
    config = ClusterConfig(
        n=4, t=1, delta_bound=0.5, epsilon=0.01,
        delay_model=FixedDelay(0.05), seed=seed, gc_depth=gc_depth,
        max_rounds=rounds, party_class=CatchupParty,
        extra_party_kwargs=dict(lag_threshold=4, request_cooldown=1.0),
    )
    cluster = build_cluster(config)
    cluster.start()
    cluster.run_until_all_committed_round(rounds - 1, timeout=120)
    return cluster


class TestResponderEdges:
    def test_own_request_ignored(self):
        cluster = ready_cluster()
        party = cluster.party(1)
        before = cluster.metrics.counters.get("sync-responses", 0)
        party._serve_sync(SyncRequest(requester=1, committed_round=0))
        assert cluster.metrics.counters.get("sync-responses", 0) == before

    def test_serves_full_history_when_unpruned(self):
        cluster = ready_cluster()
        donor = cluster.party(1)
        donor._serve_sync(SyncRequest(requester=2, committed_round=0))
        assert cluster.metrics.counters.get("sync-responses", 0) >= 1

    def test_wire_sizes_positive(self):
        cluster = ready_cluster()
        donor = cluster.party(1)
        tip = donor.output_log[-1]
        response = SyncResponse(
            responder=1,
            from_round=0,
            beacon_chain=(BeaconLink(round=1, signature="s"),),
            certificates=(),
            finalization=donor.pool.finalization_of(tip.hash)
            or donor.pool.notarization_of(tip.hash),
        )
        assert response.wire_size() > 0
        assert SyncRequest(requester=1, committed_round=3).wire_size() == 12


class TestRequesterEdges:
    def test_stale_response_ignored(self):
        cluster = ready_cluster()
        party = cluster.party(2)
        k_before = party.k_max
        stale = SyncResponse(
            responder=1, from_round=0, beacon_chain=(), certificates=(),
            finalization=None,
        )
        party._apply_sync(stale)  # no certificates: nothing to do
        assert party.k_max == k_before

    def test_disconnected_beacon_chain_discarded(self):
        cluster = ready_cluster()
        donor = cluster.party(1)
        victim = cluster.party(2)
        tip = donor.output_log[-1]
        cert = None
        from repro.core.catchup import RoundCertificate

        cert = RoundCertificate(
            block=tip,
            authenticator=donor.pool.authenticator_of(tip.hash),
            notarization=donor.pool.notarization_of(tip.hash),
        )
        # Beacon link for a far-future round whose predecessor is unknown.
        bogus = SyncResponse(
            responder=1,
            from_round=0,
            beacon_chain=(BeaconLink(round=999, signature="junk"),),
            certificates=(cert,),
            finalization=donor.pool.finalization_of(tip.hash),
        )
        from repro.core.messages import ROOT_HASH

        # Make the tip look ahead of the victim so the body runs.
        victim.k_max = 0
        victim._committed_tip = ROOT_HASH
        victim._apply_sync(bogus)
        # The broken chain aborts before any beacon value is adopted.
        assert victim.pool.beacon_value(999) is None

    def test_request_counter_monotone(self):
        cluster = ready_cluster()
        party = cluster.party(3)
        party._highest_round_seen = party.round + 100
        party._maybe_request_sync()
        first = cluster.metrics.counters.get("sync-requests", 0)
        party._maybe_request_sync()  # cooldown blocks the second
        assert cluster.metrics.counters.get("sync-requests", 0) == first
