"""Tests for the catch-up (state sync) subprotocol."""

from __future__ import annotations

import pytest

from repro.core import ClusterConfig, build_cluster
from repro.core.catchup import CatchupParty
from repro.sim.delays import FixedDelay


def catchup_cluster(n=4, t=1, gc_depth=None, seed=1, max_rounds=200, **kwargs):
    config = ClusterConfig(
        n=n,
        t=t,
        delta_bound=0.5,
        epsilon=0.01,
        delay_model=FixedDelay(0.05),
        seed=seed,
        gc_depth=gc_depth,
        max_rounds=max_rounds,
        party_class=CatchupParty,
        extra_party_kwargs=dict(lag_threshold=4, request_cooldown=1.0),
        **kwargs,
    )
    return build_cluster(config)


class TestHappyPath:
    def test_catchup_party_runs_normally(self):
        cluster = catchup_cluster(max_rounds=10)
        cluster.start()
        assert cluster.run_until_all_committed_round(9, timeout=60)
        cluster.check_safety()
        assert cluster.metrics.counters.get("sync-requests", 0) == 0

    def test_beacon_signatures_retained(self):
        cluster = catchup_cluster(max_rounds=6)
        cluster.start()
        cluster.run_until_all_committed_round(5, timeout=60)
        party = cluster.party(1)
        assert set(party._beacon_signatures) >= {1, 2, 3, 4, 5}


class TestPartitionRecovery:
    def test_short_partition_recovers_without_gap(self):
        """Without pruning, the sync response reconnects the whole chain
        (no state-transfer gap needed)."""
        cluster = catchup_cluster()
        cluster.network.add_partition({4}, heal_time=6.0)
        cluster.start()
        cluster.run_for(25.0)
        cluster.check_safety()
        laggard = cluster.party(4)
        assert laggard.k_max >= cluster.party(1).k_max - 3
        assert laggard.state_transfer_gaps == []

    def test_long_offline_with_gc_jumps(self):
        """A node offline past the pruning horizon must jump: it records a
        state-transfer gap and resumes participating.  (A *partition* is
        recoverable natively — held-back messages are eventually delivered
        — so this test takes the node fully offline instead.)"""
        cluster = catchup_cluster(gc_depth=5)
        cluster.network.crash(4)
        cluster.sim.schedule_at(15.0, lambda: cluster.network.revive(4))
        cluster.start()
        cluster.run_for(60.0)
        laggard = cluster.party(4)
        leader = cluster.party(1)
        assert cluster.metrics.counters.get("sync-applied", 0) >= 1
        assert laggard.k_max >= leader.k_max - 5
        assert laggard.state_transfer_gaps, "expected a state-transfer gap"
        gap_from, gap_to = laggard.state_transfer_gaps[0]
        assert gap_from == 1  # it had committed nothing before the jump
        assert gap_to >= 5

    def test_post_jump_output_is_safe(self):
        """After the jump, the laggard's outputs are a suffix of the
        others' logs (prefix property modulo the declared gap)."""
        cluster = catchup_cluster(gc_depth=5)
        cluster.network.crash(4)
        cluster.sim.schedule_at(15.0, lambda: cluster.network.revive(4))
        cluster.start()
        cluster.run_for(60.0)
        laggard = cluster.party(4)
        reference = cluster.party(1)
        if not laggard.output_log:
            pytest.skip("laggard never recovered (unexpected)")
        ref_by_round = {b.round: b.hash for b in reference.output_log}
        for block in laggard.output_log:
            assert ref_by_round.get(block.round) == block.hash

    def test_laggard_rejoins_protocol(self):
        """After catching up, the laggard contributes shares again."""
        cluster = catchup_cluster(gc_depth=5)
        cluster.network.crash(4)
        cluster.sim.schedule_at(15.0, lambda: cluster.network.revive(4))
        cluster.start()
        cluster.run_for(60.0)
        laggard = cluster.party(4)
        assert laggard.round >= cluster.party(1).round - 2


class TestAbuseResistance:
    def test_requests_are_rate_limited(self):
        cluster = catchup_cluster(gc_depth=5)
        cluster.network.crash(4)
        cluster.sim.schedule_at(15.0, lambda: cluster.network.revive(4))
        cluster.start()
        cluster.run_for(60.0)
        requests = cluster.metrics.counters.get("sync-requests", 0)
        # One request per cooldown window at most, not one per message.
        assert requests <= 60

    def test_stale_request_ignored(self):
        """A request from an up-to-date party gets no response."""
        cluster = catchup_cluster(max_rounds=8)
        cluster.start()
        cluster.run_until_all_committed_round(7, timeout=60)
        from repro.core.catchup import SyncRequest

        before = cluster.metrics.counters.get("sync-responses", 0)
        cluster.party(1)._serve_sync(
            SyncRequest(requester=2, committed_round=cluster.party(1).k_max)
        )
        assert cluster.metrics.counters.get("sync-responses", 0) == before

    def test_forged_response_rejected(self):
        """A response whose finalization doesn't verify is discarded."""
        cluster = catchup_cluster(max_rounds=8)
        cluster.start()
        cluster.run_until_all_committed_round(7, timeout=60)
        from repro.core.catchup import BeaconLink, RoundCertificate, SyncResponse
        from repro.core.messages import Finalization

        donor = cluster.party(1)
        victim = cluster.party(2)
        tip = donor.output_log[-1]
        forged = SyncResponse(
            responder=1,
            from_round=0,
            beacon_chain=(),
            certificates=(
                RoundCertificate(
                    block=tip,
                    authenticator=donor.pool.authenticator_of(tip.hash),
                    notarization=donor.pool.notarization_of(tip.hash),
                ),
            ),
            finalization=Finalization(
                round=tip.round, proposer=tip.proposer, block_hash=tip.hash,
                aggregate="forged",
            ),
        )
        k_before = victim.k_max
        victim._apply_sync(forged)
        # Only a *verified* finalization can move the committed tip beyond
        # what the ordinary protocol had already committed.
        assert victim.metrics.counters.get("sync-bad-finalization", 0) >= 0
        assert victim.k_max >= k_before
