"""Tests for block and message structures (Section 3.4)."""

from __future__ import annotations

from repro.core.messages import (
    Authenticator,
    BeaconShare,
    Block,
    EMPTY_PAYLOAD,
    Finalization,
    FinalizationShare,
    GENESIS_BEACON,
    Notarization,
    NotarizationShare,
    Payload,
    ROOT_BLOCK,
    ROOT_HASH,
    authenticator_message,
    beacon_message,
    finalization_message,
    notarization_message,
)
from repro.crypto.hashing import DIGEST_SIZE


def make_block(round=1, proposer=2, parent=ROOT_HASH, payload=EMPTY_PAYLOAD):
    return Block(round=round, proposer=proposer, parent_hash=parent, payload=payload)


class TestPayload:
    def test_empty_size(self):
        assert EMPTY_PAYLOAD.wire_size() == 4

    def test_commands_counted(self):
        p = Payload(commands=(b"abc", b"de"))
        assert p.wire_size() == 4 + (4 + 3) + (4 + 2)

    def test_filler_counted(self):
        assert Payload(filler_bytes=1000).wire_size() == 1004

    def test_digest_distinguishes_contents(self):
        assert Payload(commands=(b"a",)).digest != Payload(commands=(b"b",)).digest
        assert Payload(filler_bytes=1).digest != Payload(filler_bytes=2).digest

    def test_digest_unambiguous_concatenation(self):
        assert Payload(commands=(b"ab", b"c")).digest != Payload(commands=(b"a", b"bc")).digest


class TestBlock:
    def test_hash_depends_on_every_field(self):
        base = make_block()
        assert base.hash != make_block(round=2).hash
        assert base.hash != make_block(proposer=3).hash
        assert base.hash != make_block(parent=b"\x01" * DIGEST_SIZE).hash
        assert base.hash != make_block(payload=Payload(commands=(b"x",))).hash

    def test_hash_deterministic(self):
        assert make_block().hash == make_block().hash

    def test_wire_size_includes_payload(self):
        small = make_block()
        big = make_block(payload=Payload(filler_bytes=10_000))
        assert big.wire_size() - small.wire_size() == 10_000

    def test_root_block(self):
        assert ROOT_BLOCK.round == 0
        assert ROOT_BLOCK.proposer == 0
        assert ROOT_BLOCK.hash == ROOT_HASH


class TestSignedMessages:
    def test_domain_separation(self):
        """The same triple signed for different purposes must differ."""
        h = make_block().hash
        messages = {
            authenticator_message(1, 2, h),
            notarization_message(1, 2, h),
            finalization_message(1, 2, h),
        }
        assert len(messages) == 3

    def test_beacon_message_binds_round(self):
        assert beacon_message(1, GENESIS_BEACON) != beacon_message(2, GENESIS_BEACON)

    def test_beacon_message_binds_previous(self):
        assert beacon_message(1, b"a" * 32) != beacon_message(1, b"b" * 32)


class TestEqualityForDedup:
    """Message equality ignores the (randomized) signature object, so pools
    and gossip can dedup semantically-identical artifacts."""

    def test_notarization_share_equality(self):
        h = make_block().hash
        a = NotarizationShare(round=1, proposer=2, block_hash=h, signer=3, share="s1")
        b = NotarizationShare(round=1, proposer=2, block_hash=h, signer=3, share="s2")
        assert a == b

    def test_different_signers_differ(self):
        h = make_block().hash
        a = NotarizationShare(round=1, proposer=2, block_hash=h, signer=3, share="s")
        b = NotarizationShare(round=1, proposer=2, block_hash=h, signer=4, share="s")
        assert a != b

    def test_notarization_equality(self):
        h = make_block().hash
        assert Notarization(1, 2, h, "agg1") == Notarization(1, 2, h, "agg2")

    def test_beacon_share_equality(self):
        assert BeaconShare(round=1, signer=2, share="x") == BeaconShare(round=1, signer=2, share="y")


class TestWireSizes:
    def test_all_small_messages_are_small(self):
        """Shares/aggregates are λ-sized objects, far below block sizes."""
        h = make_block().hash
        for message in (
            Authenticator(1, 2, h, "sig"),
            NotarizationShare(1, 2, h, 3, "s"),
            Notarization(1, 2, h, "agg"),
            FinalizationShare(1, 2, h, 3, "s"),
            Finalization(1, 2, h, "agg"),
            BeaconShare(1, 2, "s"),
        ):
            assert 0 < message.wire_size() <= 120

    def test_kind_labels_unique(self):
        h = make_block().hash
        kinds = {
            make_block().kind,
            Authenticator(1, 2, h, "s").kind,
            NotarizationShare(1, 2, h, 3, "s").kind,
            Notarization(1, 2, h, "a").kind,
            FinalizationShare(1, 2, h, 3, "s").kind,
            Finalization(1, 2, h, "a").kind,
            BeaconShare(1, 2, "s").kind,
        }
        assert len(kinds) == 7
