"""Tests for the random-beacon permutation and protocol parameters."""

from __future__ import annotations

import pytest

from repro.core.beacon import leader_is_corrupt_probability, permutation_from_beacon
from repro.core.params import (
    AdaptiveDelays,
    ProtocolParams,
    StandardDelays,
    max_faults,
)


class TestPermutation:
    def test_is_permutation(self):
        ranks = permutation_from_beacon(1, b"\x01" * 32, 10)
        assert sorted(ranks.by_rank) == list(range(1, 11))

    def test_deterministic(self):
        a = permutation_from_beacon(3, b"\x05" * 32, 7)
        b = permutation_from_beacon(3, b"\x05" * 32, 7)
        assert a.by_rank == b.by_rank

    def test_round_changes_permutation(self):
        a = permutation_from_beacon(1, b"\x05" * 32, 7)
        b = permutation_from_beacon(2, b"\x05" * 32, 7)
        assert a.by_rank != b.by_rank  # overwhelmingly likely

    def test_value_changes_permutation(self):
        a = permutation_from_beacon(1, b"\x05" * 32, 7)
        b = permutation_from_beacon(1, b"\x06" * 32, 7)
        assert a.by_rank != b.by_rank

    def test_rank_of_inverts_party_at(self):
        ranks = permutation_from_beacon(1, b"\x09" * 32, 9)
        for r in range(9):
            assert ranks.rank_of(ranks.party_at(r)) == r

    def test_leader_is_rank_zero(self):
        ranks = permutation_from_beacon(1, b"\x09" * 32, 9)
        assert ranks.leader == ranks.party_at(0)

    def test_leader_roughly_uniform(self):
        """Each party leads ~1/n of rounds over many beacon values."""
        n = 5
        counts = {i: 0 for i in range(1, n + 1)}
        trials = 2000
        for k in range(trials):
            value = k.to_bytes(32, "big")
            counts[permutation_from_beacon(1, value, n).leader] += 1
        for leader, count in counts.items():
            assert abs(count / trials - 1 / n) < 0.05

    def test_corrupt_leader_probability(self):
        assert leader_is_corrupt_probability(13, 4) == pytest.approx(4 / 13)
        assert leader_is_corrupt_probability(13, 4) < 1 / 3


class TestStandardDelays:
    def test_recommended_functions(self):
        """Eq. (2): Δprop(r) = 2·Δbnd·r, Δntry(r) = 2·Δbnd·r + ε."""
        d = StandardDelays(delta_bound=0.5, epsilon=0.1)
        assert d.prop(0) == 0.0
        assert d.prop(3) == 3.0
        assert d.ntry(0) == 0.1
        assert d.ntry(3) == 3.1

    def test_liveness_condition(self):
        """2δ + Δprop(0) <= Δntry(1) whenever δ <= Δbnd (Section 3.5)."""
        d = StandardDelays(delta_bound=0.5, epsilon=0.0)
        delta = 0.5  # delta == Δbnd, the worst allowed
        assert 2 * delta + d.prop(0) <= d.ntry(1)

    def test_non_decreasing(self):
        d = StandardDelays(delta_bound=0.2, epsilon=0.05)
        for r in range(10):
            assert d.prop(r + 1) >= d.prop(r)
            assert d.ntry(r + 1) >= d.ntry(r)


class TestAdaptiveDelays:
    def test_grows_on_failure(self):
        d = AdaptiveDelays(initial_bound=0.1, growth=2.0)
        d.on_round_result(leader_block_notarized=False)
        assert d.current_bound == 0.2

    def test_caps_at_max(self):
        d = AdaptiveDelays(initial_bound=1.0, max_bound=2.0, growth=10.0)
        d.on_round_result(False)
        assert d.current_bound == 2.0

    def test_decays_on_success_but_not_below_initial(self):
        d = AdaptiveDelays(initial_bound=0.1, growth=2.0, decay=0.5)
        d.on_round_result(False)
        d.on_round_result(True)
        assert d.current_bound == 0.1
        d.on_round_result(True)
        assert d.current_bound == 0.1

    def test_delay_functions_track_bound(self):
        d = AdaptiveDelays(initial_bound=0.1, epsilon=0.01)
        before = d.ntry(1)
        d.on_round_result(False)
        assert d.ntry(1) > before


class TestProtocolParams:
    def test_quorums(self):
        p = ProtocolParams(n=13, t=4, delays=StandardDelays(1.0))
        assert p.notarization_quorum == 9
        assert p.finalization_quorum == 9
        assert p.beacon_quorum == 5

    def test_t_bound(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=9, t=3, delays=StandardDelays(1.0))

    def test_max_faults(self):
        assert max_faults(4) == 1
        assert max_faults(13) == 4
        assert max_faults(40) == 13
        for n in range(1, 50):
            assert 3 * max_faults(n) < n
