"""Property-based tests of the message pool: order independence, monotonicity.

Delivery order is adversary-controlled (Section 3.1), so the pool's
predicates must be *insensitive to arrival order* and *monotone* (an
artifact never loses a classification as more messages arrive).  These are
the lemmas the protocol's safety arguments implicitly lean on.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import Payload, ROOT_HASH
from tests.core.test_pool import Forge


def build_chain_messages(forge: Forge, depth: int):
    """All artifacts for a fully notarized+finalized chain of ``depth``."""
    messages = []
    blocks = []
    for round in range(1, depth + 1):
        parent = blocks[-1].hash if blocks else ROOT_HASH
        block = forge.block(
            round=round,
            proposer=(round % 4) + 1,
            parent=parent,
            payload=Payload(commands=(b"r%d" % round,)),
        )
        blocks.append(block)
        messages.append(block)
        messages.append(forge.auth(block))
        messages.append(forge.notarization(block))
        for signer in (1, 2, 3):
            messages.append(forge.notar_share(block, signer))
        messages.append(forge.finalization(block))
    return blocks, messages


class TestOrderIndependence:
    @given(st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_final_state_independent_of_delivery_order(self, pyrng):
        forge = Forge()
        blocks, messages = build_chain_messages(forge, depth=4)
        shuffled = list(messages)
        pyrng.shuffle(shuffled)
        pool = forge.pool()
        for message in shuffled:
            pool.add(message)
        for block in blocks:
            assert pool.is_valid(block.hash)
            assert pool.is_notarized(block.hash)
            assert pool.is_finalized(block.hash)

    @given(st.randoms(use_true_random=False), st.integers(min_value=0, max_value=30))
    @settings(max_examples=25, deadline=None)
    def test_predicates_are_monotone(self, pyrng, prefix_len):
        """Classifications gained after a prefix never disappear later."""
        forge = Forge()
        blocks, messages = build_chain_messages(forge, depth=3)
        shuffled = list(messages)
        pyrng.shuffle(shuffled)
        pool = forge.pool()
        cut = min(prefix_len, len(shuffled))
        for message in shuffled[:cut]:
            pool.add(message)
        snapshot = {
            b.hash: (
                pool.is_authentic(b.hash),
                pool.is_valid(b.hash),
                pool.is_notarized(b.hash),
                pool.is_finalized(b.hash),
            )
            for b in blocks
        }
        for message in shuffled[cut:]:
            pool.add(message)
        for block in blocks:
            before = snapshot[block.hash]
            after = (
                pool.is_authentic(block.hash),
                pool.is_valid(block.hash),
                pool.is_notarized(block.hash),
                pool.is_finalized(block.hash),
            )
            for gained, still in zip(before, after):
                assert not gained or still

    @given(st.randoms(use_true_random=False))
    @settings(max_examples=15, deadline=None)
    def test_duplicates_never_change_state(self, pyrng):
        forge = Forge()
        blocks, messages = build_chain_messages(forge, depth=3)
        pool = forge.pool()
        for message in messages:
            pool.add(message)
        count = pool.artifact_count()
        replay = list(messages)
        pyrng.shuffle(replay)
        for message in replay:
            assert not pool.add(message)
        assert pool.artifact_count() == count


class TestPruneProperties:
    @given(
        st.randoms(use_true_random=False),
        st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=20, deadline=None)
    def test_prune_preserves_retained_rounds(self, pyrng, cutoff):
        forge = Forge()
        blocks, messages = build_chain_messages(forge, depth=5)
        shuffled = list(messages)
        pyrng.shuffle(shuffled)
        pool = forge.pool()
        for message in shuffled:
            pool.add(message)
        pool.prune(cutoff)
        for block in blocks:
            if block.round < cutoff:
                assert not pool.is_notarized(block.hash)
                assert block.hash not in pool.blocks
            else:
                assert pool.is_finalized(block.hash)

    def test_prune_is_idempotent(self):
        forge = Forge()
        blocks, messages = build_chain_messages(forge, depth=5)
        pool = forge.pool()
        for message in messages:
            pool.add(message)
        first = pool.prune(4)
        assert first > 0
        assert pool.prune(4) == 0
