"""Assorted coverage: analysis helpers, evidence sizes, gossip duplication."""

from __future__ import annotations

import pytest

from repro.analysis import dissemination_bottleneck
from repro.core import ClusterConfig, build_cluster
from repro.core.icc1 import ICC1Party
from repro.gossip import GossipParams, build_overlay
from repro.sim.delays import FixedDelay


class TestDisseminationModel:
    def test_icc0_model(self):
        assert dissemination_bottleneck(13, 4, 100_000, "ICC0") == 12 * 100_000

    def test_icc1_model(self):
        assert dissemination_bottleneck(13, 4, 100_000, "ICC1", degree=4) == 4 * 100_000

    def test_icc2_model(self):
        assert dissemination_bottleneck(13, 4, 100_000, "ICC2") == pytest.approx(
            13 / 5 * 100_000
        )

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            dissemination_bottleneck(13, 4, 1, "PAXOS")

    def test_ranking_matches_e7(self):
        """The model reproduces E7's ordering: ICC0 ≫ ICC2 > ICC1 (d=4)."""
        icc0 = dissemination_bottleneck(13, 4, 1, "ICC0")
        icc1 = dissemination_bottleneck(13, 4, 1, "ICC1")
        icc2 = dissemination_bottleneck(13, 4, 1, "ICC2")
        assert icc0 > icc1 > icc2


class TestEvidenceSizes:
    def test_wire_size(self):
        from repro.core.evidence import EquivocationEvidence
        from tests.core.test_pool import Forge
        from repro.core.messages import Payload

        forge = Forge()
        a = forge.block(round=1, proposer=2, payload=Payload(commands=(b"x",)))
        b = forge.block(round=1, proposer=2)
        evidence = EquivocationEvidence(
            round=1, proposer=2, first=forge.auth(a), second=forge.auth(b)
        )
        # Two authenticators + header: small, constant, transferable.
        assert 150 < evidence.wire_size() < 250


class TestGossipUnderDuplication:
    def test_icc1_with_transport_duplicates(self):
        """Gossip seen-sets + pool dedup absorb transport duplication."""
        n = 7
        config = ClusterConfig(
            n=n, t=2, delta_bound=0.3, epsilon=0.01,
            delay_model=FixedDelay(0.05), max_rounds=8, seed=5,
            party_class=ICC1Party,
            extra_party_kwargs=dict(
                overlay=build_overlay(n, 4, seed=5),
                gossip_params=GossipParams(request_timeout=0.4),
            ),
        )
        cluster = build_cluster(config)
        cluster.network.duplicate_prob = 0.5
        cluster.start()
        assert cluster.run_until_all_committed_round(6, timeout=300)
        cluster.check_safety()


class TestResharingTrafficModelled:
    def test_table1_scale(self):
        """The §5 resharing overhead is tiny next to consensus traffic —
        consistent with treating it as background in Table 1."""
        from repro.crypto.resharing import resharing_traffic_bytes
        from repro.analysis import icc0_bytes_per_party_per_round

        per_epoch = resharing_traffic_bytes(13)
        per_round_all = icc0_bytes_per_party_per_round(13, 1024) * 13
        assert per_epoch < per_round_all  # one epoch < one round of consensus
