"""Tests for workload generation and mempool payload sources."""

from __future__ import annotations

import pytest

from repro.core import ClusterConfig, build_cluster
from repro.sim.delays import FixedDelay
from repro.workloads import (
    MempoolWorkload,
    WorkloadSpec,
    fixed_size_source,
    management_only_source,
)


def make_cluster(workload, n=4, rounds=30, seed=2):
    config = ClusterConfig(
        n=n,
        t=1,
        delta_bound=0.3,
        epsilon=0.01,
        delay_model=FixedDelay(0.05),
        max_rounds=rounds,
        seed=seed,
        payload_source=workload.payload_source,
    )
    return build_cluster(config)


class TestStaticSources:
    def test_management_only(self):
        source = management_only_source(management_bytes=128)
        payload = source(None, 1, [])
        assert payload.wire_size() == 128 + 4
        assert not payload.commands

    def test_fixed_size(self):
        source = fixed_size_source(10_000)
        assert source(None, 1, []).wire_size() == 10_004


class TestMempoolWorkload:
    def test_all_requests_eventually_committed(self):
        wl = MempoolWorkload(WorkloadSpec(rate_per_second=40, payload_bytes=64), seed=1)
        cluster = make_cluster(wl)
        wl.install(cluster, duration=1.5)
        wl.attach_commit_pruning(cluster)
        cluster.start()
        cluster.run_for(20.0)
        cluster.check_safety()
        commands = cluster.party(1).output_commands()
        assert len(commands) == wl.submitted
        assert wl.submitted == 60

    def test_no_duplicates_across_blocks(self):
        """Chain-aware getPayload never re-includes a command (Section 3.3)."""
        wl = MempoolWorkload(WorkloadSpec(rate_per_second=40, payload_bytes=64), seed=1)
        cluster = make_cluster(wl)
        wl.install(cluster, duration=1.5)
        cluster.start()
        cluster.run_for(20.0)
        commands = cluster.party(1).output_commands()
        assert len(commands) == len(set(commands))

    def test_payload_bytes_respected(self):
        wl = MempoolWorkload(WorkloadSpec(rate_per_second=10, payload_bytes=1024), seed=1)
        cluster = make_cluster(wl)
        wl.install(cluster, duration=1.0)
        cluster.start()
        cluster.run_for(10.0)
        for block in cluster.party(1).output_log:
            for command in block.payload.commands:
                assert len(command) == 1024

    def test_poisson_arrivals(self):
        wl = MempoolWorkload(
            WorkloadSpec(rate_per_second=50, payload_bytes=32, poisson=True), seed=4
        )
        cluster = make_cluster(wl)
        wl.install(cluster, duration=2.0)
        cluster.start()
        cluster.run_for(15.0)
        # Poisson(100) arrivals: loose sanity band.
        assert 60 <= wl.submitted <= 150

    def test_max_block_commands_cap(self):
        wl = MempoolWorkload(
            WorkloadSpec(rate_per_second=200, payload_bytes=16, max_block_commands=5),
            seed=5,
        )
        cluster = make_cluster(wl)
        wl.install(cluster, duration=2.0)
        cluster.start()
        cluster.run_for(15.0)
        for block in cluster.party(1).output_log:
            assert len(block.payload.commands) <= 5

    def test_ingress_accounting(self):
        wl = MempoolWorkload(WorkloadSpec(rate_per_second=20, payload_bytes=100), seed=6)
        cluster = make_cluster(wl)
        wl.install(cluster, duration=1.0, ingress_degree=4)
        cluster.start()
        cluster.run_for(5.0)
        ingress_bytes = cluster.metrics.bytes_by_kind["ingress"]
        # submitted requests × 4 parties × (degree/2) copies × 100 bytes
        assert ingress_bytes == wl.submitted * 4 * 2 * 100
        assert wl.submitted > 0

    def test_zero_rate_is_noop(self):
        wl = MempoolWorkload(WorkloadSpec(rate_per_second=0, payload_bytes=100))
        cluster = make_cluster(wl)
        wl.install(cluster, duration=10.0)
        cluster.start()
        cluster.run_for(5.0)
        assert wl.submitted == 0

    def test_pruning_bounds_mempool(self):
        wl = MempoolWorkload(WorkloadSpec(rate_per_second=40, payload_bytes=64), seed=7)
        cluster = make_cluster(wl)
        wl.install(cluster, duration=1.5)
        wl.attach_commit_pruning(cluster)
        cluster.start()
        cluster.run_for(20.0)
        # All committed commands were pruned from every mempool.
        assert all(not pending for pending in wl._pending.values())
