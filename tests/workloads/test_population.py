"""Population model: RNG isolation, arrival processes, closed loop."""

from random import Random

from repro.core.cluster import ClusterConfig, build_cluster
from repro.sim.delays import FixedDelay, UniformDelay
from repro.workloads.batching import BatchSpec, RequestBatcher
from repro.workloads.generators import MempoolWorkload, WorkloadSpec
from repro.workloads.population import ClientPopulation, PopulationSpec, ZipfSampler


def _cluster(batcher, seed=1, n=4):
    config = ClusterConfig(
        n=n, t=1, delta_bound=0.2, epsilon=0.001, seed=seed,
        delay_model=FixedDelay(0.05),
        payload_source=batcher.payload_source,
        payload_verifier=batcher.verify_block,
    )
    cluster = build_cluster(config)
    batcher.bind(cluster)
    return cluster


def test_install_leaves_sim_rng_untouched():
    """The load-pipeline bugfix contract: installing a population draws
    every sample from its own stream, so the simulation RNG state — and
    therefore every subsequent delay sample — is bit-identical with and
    without load."""
    batcher = RequestBatcher(BatchSpec(), seed=3)
    population = ClientPopulation(
        PopulationSpec(clients=10, rate_per_second=50.0, poisson=True),
        batcher,
        seed=3,
    )
    cluster = _cluster(batcher)
    before = cluster.sim.rng.getstate()
    population.install(cluster, duration=2.0)
    assert cluster.sim.rng.getstate() == before


def test_mempool_workload_install_leaves_sim_rng_untouched():
    """Same contract for the legacy MempoolWorkload (the PR-4-style fix:
    its stream is seeded from the workload seed, not forked from sim.rng)."""
    workload = MempoolWorkload(
        WorkloadSpec(rate_per_second=100.0, payload_bytes=64, poisson=True),
        seed=7,
    )
    config = ClusterConfig(
        n=4, t=1, delta_bound=0.2, epsilon=0.001, seed=7,
        delay_model=FixedDelay(0.05), payload_source=workload.payload_source,
    )
    cluster = build_cluster(config)
    before = cluster.sim.rng.getstate()
    workload.install(cluster, duration=2.0)
    assert cluster.sim.rng.getstate() == before


def test_load_does_not_perturb_consensus_schedule():
    """End to end under a *randomized* delay model (which draws from
    sim.rng per message): enabling load must not shift any delay sample,
    so the consensus schedule — commit times per round — is bit-identical
    with and without load."""
    def commit_times(with_load: bool):
        batcher = RequestBatcher(BatchSpec(), seed=5)
        population = ClientPopulation(
            PopulationSpec(clients=10, rate_per_second=40.0, poisson=True),
            batcher,
            seed=5,
        )
        config = ClusterConfig(
            n=4, t=1, delta_bound=0.3, epsilon=0.001, seed=5,
            delay_model=UniformDelay(0.02, 0.08),
            payload_source=batcher.payload_source,
            payload_verifier=batcher.verify_block,
        )
        cluster = build_cluster(config)
        batcher.bind(cluster)
        if with_load:
            population.install(cluster, duration=1.5)
        times = []
        cluster.party(1).commit_listeners.append(
            lambda block: times.append((block.round, cluster.sim.now))
        )
        cluster.start()
        cluster.run_for(2.0)
        cluster.check_safety()
        return times

    assert commit_times(True) == commit_times(False)


def test_zipf_sampler_deterministic_and_skewed():
    sampler = ZipfSampler(1000, 1.2)
    a = [sampler.sample(Random("x")) for _ in range(50)]
    b = [sampler.sample(Random("x")) for _ in range(50)]
    assert a == b
    draws = [sampler.sample(Random(f"zipf/{i}")) for i in range(500)]
    # Rank 0 must dominate any deep tail rank under s=1.2 skew.
    assert draws.count(0) > sum(1 for d in draws if d >= 500)


def test_zipf_zero_skew_is_uniformish():
    sampler = ZipfSampler(10, 0.0)
    rng = Random(0)
    draws = [sampler.sample(rng) for _ in range(2000)]
    assert set(draws) == set(range(10))


def test_open_loop_deterministic_arrivals_count():
    batcher = RequestBatcher(BatchSpec(), seed=9)
    population = ClientPopulation(
        PopulationSpec(clients=5, rate_per_second=20.0, poisson=False),
        batcher,
        seed=9,
    )
    cluster = _cluster(batcher, seed=9)
    population.install(cluster, duration=2.0)
    cluster.start()
    cluster.run_for(3.0)
    # Deterministic spacing: one arrival every 1/20 s over [0, 2) minus the
    # first interval offset = 39 requests, all committed.
    assert batcher.submitted == 39
    assert batcher.completed == 39


def test_closed_loop_keeps_one_request_in_flight_per_client():
    clients = 6
    batcher = RequestBatcher(BatchSpec(), seed=12)
    population = ClientPopulation(
        PopulationSpec(clients=clients, mode="closed", think_time=0.0,
                       key_space=32, payload_bytes=32),
        batcher,
        seed=12,
    )
    cluster = _cluster(batcher, seed=12)
    population.install(cluster, duration=2.0)
    cluster.start()
    cluster.run_for(3.0)
    assert batcher.completed > clients  # clients resubmitted after commits
    # Per-client sequence numbers are dense: client c sent seqs 0..k.
    per_client = {}
    for rid in batcher.committed_ids:
        client = int.from_bytes(rid[2:6], "big")
        per_client.setdefault(client, []).append(int.from_bytes(rid[6:12], "big"))
    assert set(per_client) == set(range(clients))
    for seqs in per_client.values():
        assert sorted(seqs) == list(range(len(seqs)))


def test_zero_rate_population_is_a_noop():
    batcher = RequestBatcher(BatchSpec(), seed=1)
    population = ClientPopulation(
        PopulationSpec(clients=5, rate_per_second=0.0), batcher, seed=1
    )
    cluster = _cluster(batcher, seed=1)
    population.install(cluster, duration=2.0)
    cluster.start()
    cluster.run_for(2.5)
    assert batcher.submitted == 0
    assert population.generated == 0
