"""Batching-layer correctness: wire codec, batch auth, forged requests."""

import pytest

from repro.core.cluster import ClusterConfig, build_cluster
from repro.core.messages import Block, Payload
from repro.crypto import fastpath
from repro.crypto.group import group_for_profile
from repro.sim.delays import FixedDelay
from repro.smr.client import strip_client_envelope
from repro.smr.replica import attach_replicas, check_replica_agreement
from repro.workloads.batching import (
    BatchSpec,
    FastClientAuth,
    RealClientAuth,
    RequestBatcher,
    SignedRequest,
    parse_request,
    strip_request_envelope,
)
from repro.workloads.population import ClientPopulation, PopulationSpec


def _request(auth, client=3, seq=7, key=11, body=b"put\x1fk\x1fv"):
    return SignedRequest(
        client=client, seq=seq, key=key,
        auth=auth.sign(client, seq, key, body), body=body,
    )


def _run_cluster(batcher, population, n=4, duration=2.0, drain=1.5, seed=5):
    config = ClusterConfig(
        n=n,
        t=(n - 1) // 3,
        delta_bound=0.2,
        epsilon=0.001,
        seed=seed,
        delay_model=FixedDelay(0.05),
        payload_source=batcher.payload_source,
        payload_verifier=batcher.verify_block,
    )
    cluster = build_cluster(config)
    batcher.bind(cluster)
    population.install(cluster, duration)
    cluster.start()
    cluster.run_for(duration + drain)
    cluster.check_safety()
    return cluster


def test_wire_round_trip():
    auth = FastClientAuth(seed=9)
    request = _request(auth)
    parsed = parse_request(request.wire())
    assert parsed == request
    assert request.wire()[:12] == request.request_id
    assert strip_request_envelope(request.wire()) == request.body
    # Replicas route load commands through the shared strip helper.
    assert strip_client_envelope(request.wire()) == request.body
    # Non-load commands pass through both helpers unchanged.
    assert strip_request_envelope(b"noop") == b"noop"


@pytest.mark.parametrize("scheme", ["fast", "real"])
def test_batch_auth_accepts_valid_rejects_tampered(scheme):
    if scheme == "real":
        auth = RealClientAuth(seed=2, group_profile="test")
    else:
        auth = FastClientAuth(seed=2)
    good = [_request(auth, client=c, seq=c + 1, key=c) for c in range(6)]
    forged = SignedRequest(
        client=99, seq=1, key=0, auth=good[0].auth, body=b"put\x1fk\x1fevil"
    )
    report = auth.verify_batch(good + [forged])
    assert report.results == [True] * 6 + [False]
    assert report.stats.invalid == 1


def test_rlc_batch_auth_isolates_forgery_via_bisection():
    """The real backend pinpoints a forged request with bisection probes."""
    auth = RealClientAuth(seed=4, group_profile="test")
    ctx = fastpath.for_group(group_for_profile("test"))
    requests = [_request(auth, client=c, seq=c, key=c) for c in range(8)]
    tampered = SignedRequest(
        client=requests[5].client, seq=requests[5].seq, key=requests[5].key,
        auth=requests[5].auth, body=requests[5].body + b"!",
    )
    requests[5] = tampered
    before = ctx.stats.bisections
    report = auth.verify_batch(requests)
    assert [i for i, ok in enumerate(report.results) if not ok] == [5]
    assert ctx.stats.bisections > before  # RLC failed, bisection localized it


def test_forged_request_in_block_rejected_by_pool():
    """A Byzantine proposer cannot smuggle a forged request into a block:
    the pool's batch admission hook rejects the whole block, while honest
    traffic keeps committing."""
    batcher = RequestBatcher(BatchSpec(batch_max=32, auth="real"), seed=3)
    population = ClientPopulation(
        PopulationSpec(clients=8, rate_per_second=20.0, key_space=32,
                       payload_bytes=32),
        batcher,
        seed=3,
    )
    cluster = _run_cluster(batcher, population)
    assert batcher.completed == batcher.submitted > 0

    # Hand-craft a block carrying one forged request and offer it to a pool.
    honest = _request(batcher.auth, client=1, seq=10 ** 6, key=1)
    forged = SignedRequest(
        client=2, seq=10 ** 6, key=1, auth=honest.auth, body=honest.body
    )
    pool = cluster.party(1).pool
    parent = cluster.party(1).output_log[-1]
    invalid_before = pool.stats.invalid_dropped

    def block_with(request):
        return Block(
            round=parent.round + 1, proposer=2, parent_hash=parent.hash,
            payload=Payload(commands=(request.wire(),)),
        )

    assert not pool.add(block_with(forged))
    assert pool.stats.invalid_dropped == invalid_before + 1
    # The same block shape with an honestly signed request is accepted.
    assert pool.add(block_with(honest))


def test_batched_and_unbatched_finalize_same_request_set():
    """Order-insensitive equality of the finalized request sets (the
    acceptance criterion): batching changes *when* requests land in
    blocks, never *which* requests are finalized."""
    digests = {}
    counts = {}
    for batch_max in (64, 1):
        batcher = RequestBatcher(BatchSpec(batch_max=batch_max), seed=11)
        population = ClientPopulation(
            PopulationSpec(clients=16, rate_per_second=8.0, key_space=64,
                           payload_bytes=48),
            batcher,
            seed=11,
        )
        _run_cluster(batcher, population, duration=2.0, drain=2.0)
        assert batcher.completed == batcher.submitted > 0
        digests[batch_max] = batcher.committed_digest()
        counts[batch_max] = batcher.completed
    assert digests[64] == digests[1]
    assert counts[64] == counts[1]


def test_replicas_apply_load_bodies_and_agree():
    """Committed load requests drive the KV machine identically everywhere."""
    batcher = RequestBatcher(BatchSpec(batch_max=16), seed=6)
    population = ClientPopulation(
        PopulationSpec(clients=8, rate_per_second=30.0, key_space=16,
                       payload_bytes=32),
        batcher,
        seed=6,
    )
    config = ClusterConfig(
        n=4, t=1, delta_bound=0.2, epsilon=0.001, seed=6,
        delay_model=FixedDelay(0.05),
        payload_source=batcher.payload_source,
        payload_verifier=batcher.verify_block,
    )
    cluster = build_cluster(config)
    replicas = attach_replicas(cluster, checkpoint_interval=5)
    batcher.bind(cluster)
    population.install(cluster, 2.0)
    cluster.start()
    cluster.run_for(3.5)
    cluster.check_safety()
    check_replica_agreement(replicas)
    machine = replicas[0].machine
    assert machine.applied > 0
    assert machine.rejected == 0  # every body is a well-formed KV put
    assert any(key.startswith(b"k") for key in machine.state)


def test_admission_control_sheds_beyond_queue_cap():
    batcher = RequestBatcher(BatchSpec(batch_max=4, queue_cap=10), seed=8)
    auth = batcher.auth
    batch = [
        (_request(auth, client=c, seq=c, key=c), 0.001 * c) for c in range(25)
    ]
    accepted = batcher.admit_batch(batch)
    assert accepted == 10
    assert batcher.rejected == 15
    assert batcher.queue_depth == 10


def test_duplicate_submissions_are_distilled():
    batcher = RequestBatcher(BatchSpec(), seed=8)
    request = _request(batcher.auth)
    assert batcher.admit_batch([(request, 0.0), (request, 0.1)]) == 1
    assert batcher.admit_batch([(request, 0.2)]) == 0
    assert batcher.duplicates == 2
    assert batcher.submitted == 1


def test_warm_bases_builds_tables():
    auth = RealClientAuth(seed=13, group_profile="test")
    ctx = auth._suite.ctx
    publics = [auth.public(c) for c in range(4)]
    for public in publics:
        ctx._tables.pop(public, None)
    built = ctx.warm_bases(publics)
    assert built == 4
    assert ctx.warm_bases(publics) == 0  # already cached
