"""The fault injector: interception mechanics, corruption, determinism."""

from __future__ import annotations

import dataclasses

import pytest

from repro.faults import (
    BEHAVIORS,
    ByzantineFault,
    ClockSkewFault,
    CrashFault,
    FaultInjector,
    LinkFault,
    OutageFault,
    PartitionFault,
    RecoverFault,
    Scenario,
    ScenarioError,
    corrupt_message,
    register_behavior,
    scenario_corrupt,
)
from repro.sim.delays import FixedDelay
from repro.sim.metrics import Metrics
from repro.sim.network import Network
from repro.sim.simulator import Simulation


@dataclasses.dataclass(frozen=True)
class Authenticated:
    kind = "auth"
    block_hash: bytes
    body: str

    def wire_size(self) -> int:
        return len(self.block_hash) + len(self.body)


@dataclasses.dataclass(frozen=True)
class Unsignable:
    kind = "plain"
    value: int

    def wire_size(self) -> int:
        return 8


class Recorder:
    def __init__(self, index: int, sim: Simulation) -> None:
        self.index = index
        self.sim = sim
        self.received: list[tuple[float, object]] = []

    def on_receive(self, message: object) -> None:
        self.received.append((self.sim.now, message))


def make_net(n: int = 3, delay: float = 0.1):
    sim = Simulation(seed=1)
    net = Network(sim, n, FixedDelay(delay), Metrics(n=n))
    parties = [Recorder(i, sim) for i in range(1, n + 1)]
    for p in parties:
        net.attach(p)
    return sim, net, parties


def install(net: Network, *events, seed: int = 0) -> FaultInjector:
    scenario = Scenario(name="t", seed=seed, events=tuple(events))
    return FaultInjector(scenario, net).install()


class TestCorruptMessage:
    def test_never_mutates_the_original(self):
        msg = Authenticated(block_hash=b"\x01\x02", body="x")
        tampered = corrupt_message(msg)
        assert msg.block_hash == b"\x01\x02"
        assert tampered is not msg
        assert tampered.block_hash != msg.block_hash
        assert tampered.body == msg.body

    def test_prefers_authenticated_fields(self):
        tampered = corrupt_message(Authenticated(block_hash=b"\xaa", body="x"))
        assert tampered.block_hash == b"\x55"  # first byte xor 0xFF

    def test_bytes_messages_flip(self):
        assert corrupt_message(b"\x00abc") == b"\xffabc"
        assert corrupt_message(b"") is None

    def test_untamperable_returns_none(self):
        assert corrupt_message(Unsignable(value=3)) is None
        assert corrupt_message(42) is None

    def test_real_protocol_message_is_rejected_by_receiver(self):
        # A tampered notarization (hash flipped in flight) must fail the
        # receiving pool's signature verification, not enter the pool.
        from repro.core.cluster import ClusterConfig, build_cluster
        from repro.core.messages import Notarization, Payload

        class Wiretap:
            """Records every in-flight message, delivers unchanged."""

            captured: list[object] = []

            def intercept(self, sender, receiver, message, delay):
                self.captured.append(message)
                return None

        config = ClusterConfig(
            n=4, t=1, delta_bound=0.3, epsilon=0.01,
            delay_model=FixedDelay(0.05), seed=5, max_rounds=3,
            payload_source=lambda p, r, c: Payload(commands=(b"x",)),
        )
        cluster = build_cluster(config)
        tap = Wiretap()
        cluster.network.install_faults(tap)
        cluster.start()
        cluster.run_for(2.0)
        notarization = next(
            m for m in tap.captured if isinstance(m, Notarization)
        )
        tampered = corrupt_message(notarization)
        assert tampered.block_hash != notarization.block_hash
        pool = cluster.party(2).pool
        invalid_before = pool.stats.invalid_dropped
        assert pool.add(tampered) is False
        assert pool.stats.invalid_dropped == invalid_before + 1


class TestBehaviorRegistry:
    def test_known_behaviors_registered(self):
        for name in ("silent", "slow-proposer", "lazy-leader", "equivocate",
                     "withhold-finalization", "withhold-notarization",
                     "aggressive", "consistent-failure"):
            assert name in BEHAVIORS

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate fault behavior"):
            register_behavior("silent", lambda base, params: base)

    def test_unknown_behavior_rejected(self):
        from repro.core.icc0 import ICC0Party

        scenario = Scenario(name="x", events=(
            ByzantineFault(party=1, behavior="no-such-behavior"),
        ))
        with pytest.raises(ScenarioError, match="unknown fault behavior"):
            scenario_corrupt(scenario, ICC0Party)

    def test_unknown_param_rejected(self):
        from repro.core.icc0 import ICC0Party

        scenario = Scenario(name="x", events=(
            ByzantineFault(party=1, behavior="slow-proposer",
                           params=(("warp_factor", 9),)),
        ))
        with pytest.raises(ScenarioError, match="not an attribute"):
            scenario_corrupt(scenario, ICC0Party)

    def test_identical_declarations_share_one_class(self):
        from repro.core.icc0 import ICC0Party

        scenario = Scenario(name="x", events=(
            ByzantineFault(party=1, behavior="slow-proposer",
                           params=(("propose_lag", 2.0),)),
            ByzantineFault(party=2, behavior="slow-proposer",
                           params=(("propose_lag", 2.0),)),
            ByzantineFault(party=3, behavior="slow-proposer",
                           params=(("propose_lag", 9.0),)),
        ))
        corrupt = scenario_corrupt(scenario, ICC0Party)
        assert corrupt[1] is corrupt[2]
        assert corrupt[1] is not corrupt[3]
        assert corrupt[1].propose_lag == 2.0
        assert corrupt[3].propose_lag == 9.0


class TestTimedFaults:
    def test_crash_and_recover_fire_on_schedule(self):
        sim, net, parties = make_net()
        install(net, CrashFault(at=1.0, party=3), RecoverFault(at=2.0, party=3))
        sim.schedule(0.5, lambda: net.broadcast(1, b"early"))   # dropped at 3
        sim.schedule(1.5, lambda: net.broadcast(1, b"during"))  # dropped at 3
        sim.schedule(2.5, lambda: net.broadcast(1, b"after"))   # delivered
        sim.run()
        assert [m for _, m in parties[2].received] == [b"early", b"after"]
        # "early" arrives at 0.6 < 1.0, before the crash.

    def test_partition_fires_on_schedule(self):
        sim, net, parties = make_net()
        install(net, PartitionFault(at=1.0, group=(3,), heal_at=4.0))
        sim.schedule(2.0, lambda: net.broadcast(1, b"held"))
        sim.run()
        # Held until the heal at 4.0, plus the base 0.1 delay.
        assert parties[2].received == [(4.1, b"held")]

    def test_no_interceptor_for_timed_only_scenarios(self):
        sim, net, parties = make_net()
        install(net, CrashFault(at=1.0, party=3), RecoverFault(at=2.0, party=3))
        assert net._faults is None  # zero per-delivery overhead

    def test_double_install_rejected(self):
        sim, net, _ = make_net()
        injector = install(net, LinkFault(start=0.0, end=1.0, drop_prob=1.0))
        with pytest.raises(ValueError, match="already installed"):
            injector.install()
        with pytest.raises(ValueError, match="already installed"):
            install(net, LinkFault(start=0.0, end=1.0, drop_prob=1.0))

    def test_validates_against_cluster_size(self):
        sim, net, _ = make_net(n=3)
        with pytest.raises(ScenarioError):
            install(net, CrashFault(at=1.0, party=9))


class TestLinkFaults:
    def test_drop_all(self):
        sim, net, parties = make_net()
        injector = install(net, LinkFault(start=0.0, end=10.0, drop_prob=1.0))
        net.broadcast(1, b"m")
        sim.run()
        assert parties[0].received == [(0.0, b"m")]  # self-delivery untouched
        assert parties[1].received == []
        assert parties[2].received == []
        assert injector.counters["drop"] == 2

    def test_window_respected(self):
        sim, net, parties = make_net()
        install(net, LinkFault(start=5.0, end=10.0, drop_prob=1.0))
        net.broadcast(1, b"before")
        sim.schedule(12.0, lambda: net.broadcast(1, b"after"))
        sim.run()
        assert [m for _, m in parties[2].received] == [b"before", b"after"]

    def test_sender_scoping(self):
        sim, net, parties = make_net()
        install(net, LinkFault(start=0.0, end=10.0, sender=1, drop_prob=1.0))
        net.send(1, 3, b"from-1")
        net.send(2, 3, b"from-2")
        sim.run()
        assert [m for _, m in parties[2].received] == [b"from-2"]

    def test_receiver_scoping(self):
        sim, net, parties = make_net()
        install(net, LinkFault(start=0.0, end=10.0, receiver=3, drop_prob=1.0))
        net.broadcast(1, b"m")
        sim.run()
        assert parties[1].received != []
        assert parties[2].received == []

    def test_duplicate_all(self):
        sim, net, parties = make_net()
        injector = install(
            net, LinkFault(start=0.0, end=10.0, duplicate_prob=1.0)
        )
        net.send(1, 3, b"m")
        sim.run()
        assert [m for _, m in parties[2].received] == [b"m", b"m"]
        times = [t for t, _ in parties[2].received]
        assert times[1] >= times[0]
        assert injector.counters["duplicate"] == 1

    def test_extra_delay(self):
        sim, net, parties = make_net(delay=0.1)
        install(net, LinkFault(start=0.0, end=10.0, extra_delay=0.5))
        net.send(1, 3, b"m")
        sim.run()
        assert parties[2].received == [(0.6, b"m")]

    def test_corrupt_copy_reaches_receiver(self):
        sim, net, parties = make_net()
        msg = Authenticated(block_hash=b"\x01", body="x")
        injector = install(net, LinkFault(start=0.0, end=10.0, corrupt_prob=1.0))
        net.send(1, 3, msg)
        sim.run()
        (_, delivered), = parties[2].received
        assert delivered.block_hash != msg.block_hash
        assert msg.block_hash == b"\x01"  # original untouched
        assert injector.counters["corrupt"] == 1

    def test_untamperable_corruption_becomes_drop(self):
        sim, net, parties = make_net()
        install(net, LinkFault(start=0.0, end=10.0, corrupt_prob=1.0))
        net.send(1, 3, Unsignable(value=1))
        sim.run()
        assert parties[2].received == []


class TestSkewAndOutage:
    def test_skew_delays_outbound_only(self):
        sim, net, parties = make_net(delay=0.1)
        install(net, ClockSkewFault(start=0.0, end=10.0, party=1, offset=0.3))
        net.send(1, 3, b"out")   # skewed sender
        net.send(2, 3, b"ref")   # unaffected
        net.send(3, 1, b"in")    # inbound to the skewed party: unaffected
        sim.run()
        # Arrival order: the unaffected message lands first.
        assert parties[2].received == [(0.1, b"ref"), (0.4, b"out")]
        assert parties[0].received == [(0.1, b"in")]

    def test_outage_stretches_to_window_end(self):
        sim, net, parties = make_net(delay=0.1)
        install(net, OutageFault(start=1.0, end=3.0))
        sim.schedule(2.0, lambda: net.send(1, 3, b"m"))
        sim.run()
        # Sent at 2.0 inside the outage: lands one base delay after 3.0.
        assert parties[2].received == [(3.1, b"m")]

    def test_delivery_landing_in_outage_is_stretched(self):
        sim, net, parties = make_net(delay=0.5)
        install(net, OutageFault(start=1.0, end=3.0))
        sim.schedule(0.8, lambda: net.send(1, 3, b"m"))  # would land at 1.3
        sim.run()
        assert parties[2].received == [(3.5, b"m")]

    def test_outside_outage_unaffected(self):
        sim, net, parties = make_net(delay=0.1)
        install(net, OutageFault(start=1.0, end=3.0))
        net.send(1, 3, b"m")
        sim.run()
        assert parties[2].received == [(0.1, b"m")]


class TestDeterminism:
    def run_once(self, seed: int = 4) -> list[tuple[float, object]]:
        sim, net, parties = make_net()
        install(
            net,
            LinkFault(start=0.0, end=10.0, drop_prob=0.3,
                      duplicate_prob=0.3, extra_delay=0.05, jitter=0.1),
            seed=seed,
        )
        for k in range(20):
            sim.schedule(0.1 * k, lambda k=k: net.broadcast(1 + k % 3, bytes([k])))
        sim.run()
        return [(p.index, t, m) for p in parties for t, m in p.received]

    def test_same_seed_same_faults(self):
        assert self.run_once() == self.run_once()

    def test_fault_rng_independent_of_simulation_rng(self):
        # The injector must never touch sim.rng: a no-fault run and a
        # faulted run consume identical simulation RNG streams.
        def sim_rng_state(with_faults: bool):
            sim, net, parties = make_net()
            if with_faults:
                install(net, LinkFault(start=0.0, end=10.0, drop_prob=0.5))
            net.broadcast(1, b"m")
            sim.run()
            return sim.rng.random()

        assert sim_rng_state(False) == sim_rng_state(True)
