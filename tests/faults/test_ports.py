"""The experiment ports must reproduce their pre-scenario-layer results.

E5 (robustness) used hand-wired ``corrupt`` dicts; E10 (intermittent)
used the dedicated ``IntermittentSynchrony`` delay model.  Both now run
through the fault-scenario layer — these tests pin that the port is
*bit-identical*, not merely similar: same committed blocks, same commit
times, same metrics.
"""

from __future__ import annotations

from repro.adversary import SlowProposerMixin
from repro.adversary.behaviors import corrupt_class
from repro.core.cluster import build_cluster
from repro.core.icc0 import ICC0Party
from repro.experiments import intermittent, robustness
from repro.experiments.common import make_icc_config, run_icc
from repro.faults import Scenario, install_scenario, outage_schedule
from repro.sim.delays import FixedDelay, IntermittentSynchrony


class TestIntermittentPort:
    def test_bit_identical_to_delay_model(self):
        period, sync_len, duration, n, seed = 20.0, 5.0, 60.0, 4, 31

        # Reference: the dedicated delay model, as the experiment was
        # written before the fault layer existed.
        ref_config = make_icc_config(
            "ICC0", n=n, t=(n - 1) // 3, delta_bound=0.3, epsilon=0.02,
            delay_model=IntermittentSynchrony(
                base=FixedDelay(0.05), period=period, sync_len=sync_len
            ),
            seed=seed,
        )
        ref = build_cluster(ref_config)
        ref.start()
        ref.run_for(duration, max_events=30_000_000)
        ref.check_safety()

        # Port: plain FixedDelay plus an OutageFault schedule.
        config = make_icc_config(
            "ICC0", n=n, t=(n - 1) // 3, delta_bound=0.3, epsilon=0.02,
            delay_model=FixedDelay(0.05), seed=seed,
        )
        cluster = build_cluster(config)
        install_scenario(cluster, Scenario(
            name="intermittent",
            events=outage_schedule(period, sync_len, duration),
        ))
        cluster.start()
        cluster.run_for(duration, max_events=30_000_000)
        cluster.check_safety()

        ref_obs = ref.honest_parties[0]
        obs = cluster.honest_parties[0]
        assert obs.round == ref_obs.round
        assert obs.k_max == ref_obs.k_max
        assert [b.hash for b in obs.output_log] == [
            b.hash for b in ref_obs.output_log
        ]
        assert [
            (r.round, r.time) for r in cluster.metrics.commits_of(obs.index)
        ] == [
            (r.round, r.time) for r in ref.metrics.commits_of(ref_obs.index)
        ]

    def test_experiment_module_uses_the_scenario(self):
        result = intermittent.run(duration=60.0, n=4)
        assert result.total_rounds_committed > 0
        assert result.windows  # commits bucketed per window


class TestRobustnessPort:
    def test_icc0_attack_matches_hand_wired_corrupt_dict(self):
        n, t, duration, seed = 7, 2, 20.0, 9
        cls = corrupt_class(ICC0Party, SlowProposerMixin)
        cls.propose_lag = robustness.ATTACK_LAG
        config = make_icc_config(
            "ICC0", n=n, t=t, delta_bound=0.5, epsilon=0.01,
            delay_model=FixedDelay(0.05), seed=seed,
            corrupt={i: cls for i in range(1, t + 1)},
        )
        cluster = run_icc(config, duration=duration)
        observer = cluster.honest_parties[-1].index
        reference = cluster.metrics.blocks_per_second(observer, duration)

        ported = robustness.run_icc0(n=n, t=t, attack=True, duration=duration)
        assert ported == reference

    def test_attack_scenario_shapes(self):
        icc = robustness.attack_scenario("ICC0", t=3)
        assert {e.party for e in icc.events} == {1, 2, 3}
        assert all(e.behavior == "slow-proposer" for e in icc.events)
        pbft = robustness.attack_scenario("PBFT", t=3)
        assert len(pbft.events) == 1
        assert pbft.events[0].behavior == "slow-primary-pbft"

    def test_fault_free_paths_untouched(self):
        # attack=False must not consult the fault layer at all.
        assert robustness.run_icc0(n=4, t=1, attack=False, duration=10.0) > 0
