"""Chaos sweeps: generator coherence, invariants hold, full determinism."""

from __future__ import annotations

import pytest

from repro.experiments import chaos, runner
from repro.faults import generate_scenario
from repro.__main__ import main as cli_main


class TestGenerator:
    def test_scenarios_validate_and_are_deterministic(self):
        for seed in range(12):
            a = generate_scenario(seed, n=7, t=2, duration=40.0)
            b = generate_scenario(seed, n=7, t=2, duration=40.0)
            assert a == b
            a.validate(7)

    def test_different_seeds_differ(self):
        assert generate_scenario(0, 7, 2, 40.0) != generate_scenario(1, 7, 2, 40.0)

    def test_fault_budget_respected(self):
        # Byzantine + concurrently-crashed must never exceed t: beyond t
        # the tree stalls and once-broadcast beacon shares are lost for
        # good (see generate.py) — the scenario would be uncheckable.
        for seed in range(30):
            s = generate_scenario(seed, n=7, t=2, duration=40.0)
            n_byz = len(s.byzantine())
            crashes = s.of_kind("crash")
            recovers = {e.party: e.at for e in s.of_kind("recover")}
            moments = sorted({e.at for e in crashes})
            for now in moments:
                down = sum(
                    1 for e in crashes
                    if e.at <= now < recovers.get(e.party, float("inf"))
                )
                assert n_byz + down <= 2, f"seed {seed} over budget at t={now}"

    def test_transients_settle_before_the_tail(self):
        for seed in range(12):
            s = generate_scenario(seed, n=7, t=2, duration=40.0)
            assert s.clear_time() <= 0.6 * 40.0


class TestInvariantsHold:
    @pytest.mark.parametrize("protocol", ["ICC0", "ICC1", "ICC2"])
    def test_generated_scenarios_pass(self, protocol):
        result = chaos.run_scenario(
            protocol=protocol, scenario_seed=0, duration=30.0
        )
        assert result.ok, result.violations
        assert result.liveness_checked
        assert result.min_committed > 0


class TestDeterminism:
    def test_repeated_runs_identical(self):
        first = chaos.run_scenario(protocol="ICC0", scenario_seed=1, duration=30.0)
        second = chaos.run_scenario(protocol="ICC0", scenario_seed=1, duration=30.0)
        assert first == second

    def test_serial_and_parallel_identical_with_traces(self, tmp_path):
        suite = chaos.specs(seeds=(0,), protocols=("ICC0", "ICC1"), duration=30.0)
        d1, d2 = tmp_path / "serial", tmp_path / "parallel"
        serial = runner.execute(suite, jobs=1, trace_dir=str(d1))
        parallel = runner.execute(suite, jobs=2, trace_dir=str(d2))
        assert serial == parallel
        names1 = sorted(p.name for p in d1.iterdir() if p.name != "runner.jsonl")
        names2 = sorted(p.name for p in d2.iterdir() if p.name != "runner.jsonl")
        assert names1 == names2 == [
            "0000-icc0-n7-seed101.jsonl", "0001-icc1-n7-seed101.jsonl",
        ]
        for name in names1:
            assert (d1 / name).read_bytes() == (d2 / name).read_bytes()

    def test_traces_record_fault_events(self, tmp_path):
        from repro.obs import read_jsonl

        suite = chaos.specs(seeds=(0,), protocols=("ICC0",), duration=30.0)
        runner.execute(suite, jobs=1, trace_dir=str(tmp_path))
        events = read_jsonl(str(tmp_path / "0000-icc0-n7-seed101.jsonl"))
        kinds = {e.kind for e in events}
        assert "fault.inject" in kinds
        assert kinds & {"fault.drop", "fault.delay", "fault.corrupt",
                        "fault.duplicate", "fault.crash", "fault.partition"}

    def test_tracing_does_not_change_results(self, tmp_path):
        suite = chaos.specs(seeds=(0,), protocols=("ICC0",), duration=30.0)
        untraced = runner.execute(suite, jobs=1)
        traced = runner.execute(suite, jobs=1, trace_dir=str(tmp_path))
        assert untraced == traced


class TestCli:
    def test_chaos_smoke(self, capsys):
        cli_main([
            "chaos", "--seed", "0", "--protocols", "icc0",
            "--duration", "30", "--n", "7",
        ])
        out = capsys.readouterr().out
        assert "Chaos sweep" in out
        assert "OK" in out
        assert "satisfied safety + bounded liveness" in out

    def test_chaos_output_deterministic(self, capsys):
        args = ["chaos", "--seed", "1", "--protocols", "icc0", "--duration", "30"]
        cli_main(args)
        first = capsys.readouterr().out
        cli_main(args + ["--jobs", "2"])
        second = capsys.readouterr().out
        assert first == second
