"""Scenario schema: validation, serialization, derived properties."""

from __future__ import annotations

import json

import pytest

from repro.faults import (
    ByzantineFault,
    ClockSkewFault,
    CrashFault,
    LinkFault,
    OutageFault,
    PartitionFault,
    RecoverFault,
    Scenario,
    ScenarioError,
    outage_schedule,
)
from repro.sim.delays import FixedDelay, IntermittentSynchrony


def scenario(*events) -> Scenario:
    return Scenario(name="test", seed=3, events=tuple(events))


class TestValidation:
    def test_coherent_scenario_passes(self):
        scenario(
            ByzantineFault(party=1, behavior="silent"),
            CrashFault(at=1.0, party=2),
            RecoverFault(at=2.0, party=2),
            PartitionFault(at=3.0, group=(2, 3), heal_at=4.0),
            LinkFault(start=0.0, end=5.0, drop_prob=0.5),
            OutageFault(start=1.0, end=2.0),
            ClockSkewFault(start=0.0, end=1.0, party=4, offset=0.1),
        ).validate(4)

    @pytest.mark.parametrize("bad", [
        CrashFault(at=1.0, party=0),
        CrashFault(at=1.0, party=5),
        CrashFault(at=-1.0, party=1),
        PartitionFault(at=1.0, group=(), heal_at=2.0),
        PartitionFault(at=1.0, group=(9,), heal_at=2.0),
        PartitionFault(at=2.0, group=(1,), heal_at=2.0),
        LinkFault(start=2.0, end=1.0),
        LinkFault(start=0.0, end=1.0, drop_prob=1.5),
        LinkFault(start=0.0, end=1.0, duplicate_prob=-0.1),
        LinkFault(start=0.0, end=1.0, sender=12),
        LinkFault(start=0.0, end=1.0, extra_delay=-1.0),
        OutageFault(start=-1.0, end=1.0),
        ClockSkewFault(start=0.0, end=1.0, party=1, offset=-0.5),
        ByzantineFault(party=7, behavior="silent"),
    ])
    def test_incoherent_event_rejected(self, bad):
        with pytest.raises(ScenarioError):
            scenario(bad).validate(4)

    def test_crash_recover_must_alternate(self):
        with pytest.raises(ScenarioError, match="crashed twice"):
            scenario(
                CrashFault(at=1.0, party=1), CrashFault(at=2.0, party=1)
            ).validate(4)
        with pytest.raises(ScenarioError, match="recovered without"):
            scenario(RecoverFault(at=1.0, party=1)).validate(4)

    def test_alternation_checked_in_time_order(self):
        # Events listed out of order are fine — time order is what counts.
        scenario(
            RecoverFault(at=2.0, party=1), CrashFault(at=1.0, party=1)
        ).validate(4)

    def test_double_byzantine_rejected(self):
        with pytest.raises(ScenarioError, match="corrupted twice"):
            scenario(
                ByzantineFault(party=1, behavior="silent"),
                ByzantineFault(party=1, behavior="lazy-leader"),
            ).validate(4)

    def test_byzantine_and_crash_overlap_rejected(self):
        with pytest.raises(ScenarioError, match="both Byzantine and crash"):
            scenario(
                ByzantineFault(party=1, behavior="silent"),
                CrashFault(at=1.0, party=1),
                RecoverFault(at=2.0, party=1),
            ).validate(4)


class TestDerived:
    def test_clear_time_is_max_transient_settle(self):
        s = scenario(
            ByzantineFault(party=1, behavior="silent"),  # standing: counts 0
            CrashFault(at=1.0, party=2),
            RecoverFault(at=7.0, party=2),
            PartitionFault(at=2.0, group=(3,), heal_at=9.0),
            LinkFault(start=0.0, end=4.0, drop_prob=0.1),
        )
        assert s.clear_time() == 9.0
        assert scenario(ByzantineFault(party=1, behavior="silent")).clear_time() == 0.0

    def test_needs_interceptor(self):
        assert not scenario(CrashFault(at=1.0, party=1)).needs_interceptor()
        assert scenario(LinkFault(start=0.0, end=1.0)).needs_interceptor()
        assert scenario(OutageFault(start=0.0, end=1.0)).needs_interceptor()
        assert scenario(
            ClockSkewFault(start=0.0, end=1.0, party=1, offset=0.1)
        ).needs_interceptor()

    def test_byzantine_map_and_describe(self):
        s = scenario(
            ByzantineFault(party=2, behavior="silent"),
            CrashFault(at=1.0, party=3),
            RecoverFault(at=2.0, party=3),
        )
        assert set(s.byzantine()) == {2}
        assert s.describe() == "1 byzantine, 1 crash, 1 recover"
        assert Scenario(name="x").describe() == "fault-free"


class TestSerialization:
    def test_json_round_trip(self):
        s = scenario(
            ByzantineFault(party=1, behavior="slow-proposer",
                           params=(("propose_lag", 2.0),)),
            CrashFault(at=1.0, party=2),
            RecoverFault(at=2.0, party=2),
            PartitionFault(at=3.0, group=(2, 3), heal_at=4.0),
            LinkFault(start=0.0, end=5.0, sender=1, drop_prob=0.5, jitter=0.1),
            OutageFault(start=1.0, end=2.0),
            ClockSkewFault(start=0.0, end=1.0, party=4, offset=0.1),
        )
        # Through an actual JSON string, not just dicts.
        restored = Scenario.from_dict(json.loads(json.dumps(s.to_dict())))
        assert restored == s

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ScenarioError, match="unknown fault event kind"):
            Scenario.from_dict({"name": "x", "events": [{"kind": "meteor"}]})

    def test_from_dict_rejects_bad_fields(self):
        with pytest.raises(ScenarioError, match="bad crash event"):
            Scenario.from_dict(
                {"name": "x", "events": [{"kind": "crash", "when": 1.0}]}
            )


class TestOutageSchedule:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ScenarioError):
            outage_schedule(10.0, 0.0, 100.0)
        with pytest.raises(ScenarioError):
            outage_schedule(10.0, 11.0, 100.0)

    def test_windows_complement_sync_windows(self):
        period, sync_len = 20.0, 5.0
        windows = outage_schedule(period, sync_len, 100.0)
        model = IntermittentSynchrony(
            base=FixedDelay(0.05), period=period, sync_len=sync_len
        )

        def in_outage(t: float) -> bool:
            return any(start <= t < end for start, end in
                       ((w.start, w.end) for w in windows))

        for t in [0.0, 4.999, 5.0, 12.0, 19.999, 20.0, 24.999, 25.0, 97.0]:
            assert in_outage(t) == (not model.in_sync_window(t)), t

    def test_covers_the_full_duration(self):
        windows = outage_schedule(20.0, 5.0, 100.0)
        # The last window must extend past the duration so a message sent
        # at t=duration inside an async stretch still gets stretched.
        assert windows[-1].end >= 100.0
