"""The invariant checker, against hand-built cluster doubles."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults import (
    CrashFault,
    OutageFault,
    RecoverFault,
    Scenario,
    check_invariants,
)


@dataclass(frozen=True)
class Entry:
    round: int
    hash: bytes


@dataclass(frozen=True)
class Commit:
    time: float


@dataclass
class FakeParty:
    index: int
    output_log: list


@dataclass
class FakeNetwork:
    crashed: set = field(default_factory=set)

    def is_crashed(self, index: int) -> bool:
        return index in self.crashed


@dataclass
class FakeMetrics:
    commits: dict

    def commits_of(self, index: int) -> list:
        return self.commits.get(index, [])


@dataclass
class FakeConfig:
    delta_bound: float = 0.5


class FakeCluster:
    def __init__(self, parties, commits, crashed=(), safety_error=None):
        self.honest_parties = parties
        self.network = FakeNetwork(set(crashed))
        self.metrics = FakeMetrics(commits)
        self.config = FakeConfig()
        self._safety_error = safety_error

    def check_safety(self):
        if self._safety_error:
            raise AssertionError(self._safety_error)


def chain(*hashes: bytes) -> list[Entry]:
    return [Entry(round=i, hash=h) for i, h in enumerate(hashes)]


TRANSIENT = Scenario(name="s", events=(
    CrashFault(at=1.0, party=2), RecoverFault(at=4.0, party=2),
))  # clears at 4.0; deadline = 4.0 + 12 * 0.5 = 10.0


class TestSafety:
    def test_agreeing_logs_pass(self):
        cluster = FakeCluster(
            [FakeParty(1, chain(b"a", b"b")), FakeParty(2, chain(b"a", b"b", b"c"))],
            {1: [Commit(5.0)], 2: [Commit(5.0)]},
        )
        report = check_invariants(cluster, TRANSIENT, duration=20.0)
        assert report.ok
        assert report.safety_ok and report.liveness_ok
        assert "safety OK" in report.describe()

    def test_conflicting_height_flagged(self):
        cluster = FakeCluster(
            [FakeParty(1, chain(b"a", b"b")), FakeParty(2, chain(b"a", b"X"))],
            {1: [Commit(5.0)], 2: [Commit(5.0)]},
        )
        report = check_invariants(cluster, TRANSIENT, duration=20.0)
        assert not report.safety_ok
        assert any("height 1" in v.detail for v in report.violations)

    def test_cluster_prefix_check_failure_flagged(self):
        cluster = FakeCluster(
            [FakeParty(1, chain(b"a"))], {1: [Commit(5.0)]},
            safety_error="prefix mismatch",
        )
        report = check_invariants(cluster, TRANSIENT, duration=20.0)
        assert not report.safety_ok
        assert any("prefix mismatch" in v.detail for v in report.violations)

    def test_baseline_height_logs_supported(self):
        @dataclass(frozen=True)
        class Batch:
            height: int
            digest: bytes

        cluster = FakeCluster(
            [FakeParty(1, [Batch(0, b"a")]), FakeParty(2, [Batch(0, b"z")])],
            {1: [Commit(5.0)], 2: [Commit(5.0)]},
        )
        report = check_invariants(cluster, TRANSIENT, duration=20.0)
        assert not report.safety_ok


class TestLiveness:
    def test_not_assessable_when_run_too_short(self):
        cluster = FakeCluster([FakeParty(1, chain(b"a"))], {1: []})
        report = check_invariants(cluster, TRANSIENT, duration=9.0)
        assert report.ok
        assert not report.liveness_checked
        assert report.liveness_deadline is None
        assert "liveness n/a" in report.describe()

    def test_no_commit_after_clear_flagged(self):
        cluster = FakeCluster(
            [FakeParty(1, chain(b"a"))], {1: [Commit(2.0)]},  # only pre-fault
        )
        report = check_invariants(cluster, TRANSIENT, duration=20.0)
        assert not report.liveness_ok
        assert any("never committed" in v.detail for v in report.violations)

    def test_late_first_commit_flagged(self):
        cluster = FakeCluster(
            [FakeParty(1, chain(b"a"))], {1: [Commit(15.0)]},  # past 10.0
        )
        report = check_invariants(cluster, TRANSIENT, duration=20.0)
        assert not report.liveness_ok
        assert any("bound" in v.detail for v in report.violations)

    def test_commit_inside_deadline_passes(self):
        cluster = FakeCluster(
            [FakeParty(1, chain(b"a"))], {1: [Commit(2.0), Commit(9.5)]},
        )
        report = check_invariants(cluster, TRANSIENT, duration=20.0)
        assert report.liveness_ok
        assert report.liveness_deadline == 10.0

    def test_crashed_at_end_excluded(self):
        unrecovered = Scenario(name="s", events=(CrashFault(at=1.0, party=2),))
        cluster = FakeCluster(
            [FakeParty(1, chain(b"a")), FakeParty(2, chain(b"a"))],
            {1: [Commit(2.0)], 2: []},
            crashed={2},
        )
        report = check_invariants(cluster, unrecovered, duration=20.0)
        assert report.liveness_ok
        assert report.parties_checked == (1,)

    def test_round_time_override(self):
        cluster = FakeCluster(
            [FakeParty(1, chain(b"a"))], {1: [Commit(5.9)]},
        )
        report = check_invariants(
            cluster, TRANSIENT, duration=20.0, round_time=0.1, liveness_rounds=10
        )  # deadline 4.0 + 1.0 = 5.0: commit at 5.9 is late
        assert not report.liveness_ok

    def test_byzantine_only_scenario_checks_from_zero(self):
        static = Scenario(name="s", events=())
        cluster = FakeCluster([FakeParty(1, chain(b"a"))], {1: [Commit(0.5)]})
        report = check_invariants(cluster, static, duration=20.0)
        assert report.clear_time == 0.0
        assert report.liveness_ok

    def test_outage_clear_time(self):
        s = Scenario(name="s", events=(OutageFault(start=1.0, end=7.0),))
        cluster = FakeCluster([FakeParty(1, chain(b"a"))], {1: [Commit(8.0)]})
        report = check_invariants(cluster, s, duration=30.0)
        assert report.clear_time == 7.0
        assert report.liveness_ok
