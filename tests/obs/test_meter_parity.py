"""Metering must be a pure observer, to the same standard as tracing:
a run with a live Meter is bit-identical to the same run without one,
and the meter's aggregates agree with Metrics / the trace stream."""

from __future__ import annotations

from repro.baselines import BaselineClusterConfig, HotStuffParty, build_baseline_cluster
from repro.core import ClusterConfig, Payload, build_cluster
from repro.obs import Meter, Tracer
from repro.sim.delays import FixedDelay

ROUNDS = 8
DELTA = 0.05


def run_icc0(meter=None, tracer=None):
    config = ClusterConfig(
        n=4,
        t=1,
        delta_bound=DELTA * 6,
        epsilon=0.01,
        delay_model=FixedDelay(DELTA),
        max_rounds=ROUNDS,
        seed=7,
        payload_source=lambda p, r, c: Payload(commands=(b"cmd-%d" % r,)),
        tracer=tracer,
        meter=meter,
    )
    cluster = build_cluster(config)
    cluster.start()
    cluster.run_until_all_committed_round(ROUNDS - 2, timeout=300.0)
    cluster.check_safety()
    return cluster


def run_hotstuff(meter=None):
    config = BaselineClusterConfig(
        party_class=HotStuffParty,
        n=4,
        t=1,
        seed=7,
        delay_model=FixedDelay(DELTA),
        party_kwargs={"max_heights": 6},
        meter=meter,
    )
    cluster = build_baseline_cluster(config)
    cluster.start()
    cluster.run_until_all_committed_height(5, timeout=300.0)
    cluster.check_safety()
    return cluster


class TestMeterParity:
    def test_icc0_identical_with_and_without_metering(self):
        plain = run_icc0()
        metered = run_icc0(meter=Meter())
        for p, m in zip(plain.parties, metered.parties):
            assert p.committed_hashes == m.committed_hashes
        assert plain.metrics == metered.metrics  # every field, dataclass eq
        assert plain.sim.now == metered.sim.now

    def test_hotstuff_identical_with_and_without_metering(self):
        plain = run_hotstuff()
        metered = run_hotstuff(meter=Meter())
        for p, m in zip(plain.parties, metered.parties):
            assert p.committed_hashes == m.committed_hashes
        assert plain.metrics == metered.metrics
        assert plain.sim.now == metered.sim.now


class TestMeterEquivalence:
    def test_icc0_meter_agrees_with_metrics_and_trace(self):
        meter = Meter()
        tracer = Tracer()
        cluster = run_icc0(meter=meter, tracer=tracer)
        metrics = cluster.metrics

        # Network counters match the Metrics ground truth exactly.
        assert meter.counter_value("net.messages") == sum(
            metrics.msgs_sent.values()
        )
        assert meter.counter_value("net.bytes") == sum(
            metrics.bytes_sent.values()
        )

        # Protocol counters match trace-event counts.
        kinds = {}
        for event in tracer.events():
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        assert meter.counter_value("icc.blocks.proposed") == kinds.get(
            "icc.block.proposed", 0
        )
        assert meter.counter_value("icc.blocks.committed") == kinds.get(
            "icc.block.committed", 0
        )
        assert meter.counter_value("icc.rounds.finished") == kinds.get(
            "icc.round.done", 0
        )

        # Commit-latency histogram holds exactly the Metrics samples.
        hist = meter.histogram("icc.commit.latency")
        samples = metrics.commit_latencies()
        assert hist.count == len(samples)
        assert abs(hist.total - sum(samples)) < 1e-9

        # The simulation gauge is the final clock.
        assert meter.gauge_value("sim.duration") == cluster.sim.now
        assert meter.counter_value("sim.events.processed") > 0

    def test_hotstuff_meter_counts_commits(self):
        meter = Meter()
        cluster = run_hotstuff(meter=meter)
        committed = sum(len(p.output_log) for p in cluster.parties)
        assert meter.counter_value("baseline.commits") == committed
        hist = meter.histogram("baseline.commit.latency")
        assert hist.count == len(cluster.metrics.commit_latencies())
