"""Tracing must be a pure observer: on/off parity + Metrics equivalence.

Two guarantees from the observability design:

* **Parity** — a run with a live ``Tracer`` produces bit-identical
  results (commit logs and every ``Metrics`` field) to the same run
  without one, because emitting never touches the RNG, clock or event
  queue.
* **Equivalence** — the quantities ``repro.analysis.trace`` rebuilds
  from the event stream equal what ``Metrics`` reported for the same
  run: commit latencies, per-round message counts, total bytes.
"""

from __future__ import annotations

from repro.adversary import WithholdFinalizationMixin, corrupt_class
from repro.analysis.trace import (
    adversary_timeline,
    bytes_sent,
    commit_latencies,
    message_counts,
    round_breakdown,
    summarize,
)
from repro.baselines import BaselineClusterConfig, HotStuffParty, build_baseline_cluster
from repro.core import ClusterConfig, Payload, build_cluster
from repro.core.icc0 import ICC0Party
from repro.obs import Tracer
from repro.sim.delays import FixedDelay

ROUNDS = 8
DELTA = 0.05


def run_icc0(tracer=None, corrupt=None):
    config = ClusterConfig(
        n=4,
        t=1,
        delta_bound=DELTA * 6,
        epsilon=0.01,
        delay_model=FixedDelay(DELTA),
        max_rounds=ROUNDS,
        seed=7,
        payload_source=lambda p, r, c: Payload(commands=(b"cmd-%d" % r,)),
        corrupt=corrupt or {},
        tracer=tracer,
    )
    cluster = build_cluster(config)
    cluster.start()
    cluster.run_until_all_committed_round(ROUNDS - 2, timeout=300.0)
    cluster.check_safety()
    return cluster


def run_hotstuff(tracer=None):
    config = BaselineClusterConfig(
        party_class=HotStuffParty,
        n=4,
        t=1,
        seed=7,
        delay_model=FixedDelay(DELTA),
        party_kwargs={"max_heights": 6},
        tracer=tracer,
    )
    cluster = build_baseline_cluster(config)
    cluster.start()
    cluster.run_until_all_committed_height(5, timeout=300.0)
    cluster.check_safety()
    return cluster


class TestParity:
    def test_icc0_identical_with_and_without_tracing(self):
        plain = run_icc0()
        traced = run_icc0(tracer=Tracer())
        for p, t in zip(plain.parties, traced.parties):
            assert p.committed_hashes == t.committed_hashes
        assert plain.metrics == traced.metrics  # every field, dataclass eq
        assert plain.sim.now == traced.sim.now

    def test_hotstuff_identical_with_and_without_tracing(self):
        plain = run_hotstuff()
        traced = run_hotstuff(tracer=Tracer())
        for p, t in zip(plain.parties, traced.parties):
            assert p.committed_hashes == t.committed_hashes
        assert plain.metrics == traced.metrics
        assert plain.sim.now == traced.sim.now


class TestMetricsEquivalence:
    def test_icc0_reconstruction_matches_metrics(self):
        tracer = Tracer()
        cluster = run_icc0(tracer=tracer)
        events = tracer.events()
        metrics = cluster.metrics
        assert tracer.dropped == 0

        # Message counts: per-round and total.
        per_round = {
            r: c for r, c in message_counts(events).items() if r is not None
        }
        assert per_round == dict(metrics.msgs_by_round)
        assert sum(message_counts(events).values()) == sum(metrics.msgs_sent.values())

        # Bytes: trace totals use the same (n-1)-wire-copy convention.
        assert bytes_sent(events) == sum(metrics.bytes_sent.values())

        # Commit latencies: per-commit-event reconstruction equals the
        # Metrics sample list exactly (same instants, same floats).
        proposed = {
            e.payload["block"]: e.time for e in events if e.kind == "icc.block.proposed"
        }
        samples = sorted(
            e.time - proposed[e.payload["block"]]
            for e in events
            if e.kind == "icc.block.committed" and e.payload["block"] in proposed
        )
        assert samples == sorted(metrics.commit_latencies())
        # The per-block (first commit) view is a subset of those samples.
        for latency in commit_latencies(events).values():
            assert latency in samples

    def test_hotstuff_reconstruction_matches_metrics(self):
        tracer = Tracer()
        cluster = run_hotstuff(tracer=tracer)
        events = tracer.events()
        metrics = cluster.metrics
        assert sum(message_counts(events).values()) == sum(metrics.msgs_sent.values())
        assert bytes_sent(events) == sum(metrics.bytes_sent.values())
        proposed = {
            e.payload["batch"]: e.time for e in events if e.kind == "hotstuff.propose"
        }
        samples = sorted(
            e.time - proposed[e.payload["batch"]]
            for e in events
            if e.kind == "baseline.commit" and e.payload["batch"] in proposed
        )
        assert samples == sorted(metrics.commit_latencies())


class TestBreakdownAndTimeline:
    def test_round_breakdown_reflects_paper_latencies(self):
        tracer = Tracer()
        run_icc0(tracer=tracer)
        breakdown = round_breakdown(tracer.events())
        # Steady-state rounds: propose->notarize = 2δ, notarize->finalize = δ.
        steady = [b for b in breakdown.values() if 2 <= b.round <= ROUNDS - 2]
        assert steady
        for entry in steady:
            gaps = entry.phase_durations()
            assert abs(gaps["propose->notarize"] - 2 * DELTA) < 1e-9
            assert abs(gaps["notarize->finalize"] - DELTA) < 1e-9
            assert abs(gaps["propose->commit"] - 3 * DELTA) < 1e-9
            assert entry.messages > 0

    def test_adversary_timeline_captures_withholding(self):
        tracer = Tracer()
        withholder = corrupt_class(ICC0Party, WithholdFinalizationMixin)
        run_icc0(tracer=tracer, corrupt={1: withholder})
        timeline = adversary_timeline(tracer.events())
        assert timeline
        assert {a.kind for a in timeline} == {"adv.withhold.finalization"}
        assert {a.party for a in timeline} == {1}
        assert timeline == sorted(timeline, key=lambda a: (a.time, a.party, a.kind))

    def test_summary_counts_line_up(self):
        tracer = Tracer()
        cluster = run_icc0(tracer=tracer)
        summary = summarize(tracer.events())
        assert summary.events == len(tracer)
        assert summary.parties == 4
        assert "ICC0" in summary.protocols
        assert summary.blocks_committed == len(cluster.party(1).output_log)
        assert summary.rounds_entered >= ROUNDS - 2
        assert summary.adversary_events == 0
