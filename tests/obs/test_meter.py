"""Unit tests for the metric layer (repro.obs.metrics)."""

from __future__ import annotations

import io

import pytest

from repro.obs import (
    METRICS,
    NULL_METER,
    Histogram,
    Meter,
    NullMeter,
    UnknownMetric,
    format_meter,
    merge_meters,
)
from repro.obs.metrics import LATENCY_BUCKETS, MetricKindMismatch


class TestRegistry:
    def test_registry_is_populated_and_specs_are_complete(self):
        assert "net.messages" in METRICS
        assert "icc.commit.latency" in METRICS
        for name, spec in METRICS.items():
            assert spec.name == name
            assert spec.kind in ("counter", "gauge", "histogram")
            assert spec.description
            if spec.kind == "histogram":
                assert spec.buckets, f"{name} has no buckets"
                assert list(spec.buckets) == sorted(spec.buckets)

    def test_unknown_names_are_rejected(self):
        meter = Meter()
        with pytest.raises(UnknownMetric):
            meter.count("no.such.metric")
        with pytest.raises(UnknownMetric):
            meter.gauge("no.such.metric", 1.0)
        with pytest.raises(UnknownMetric):
            meter.observe("no.such.metric", 1.0)

    def test_kind_mismatch_is_rejected(self):
        meter = Meter()
        with pytest.raises(MetricKindMismatch):
            meter.count("sim.duration")  # gauge, not counter
        with pytest.raises(MetricKindMismatch):
            meter.observe("net.messages", 1.0)  # counter, not histogram


class TestMeter:
    def test_counters_accumulate(self):
        meter = Meter()
        meter.count("net.messages")
        meter.count("net.messages", 4)
        assert meter.counter_value("net.messages") == 5
        assert meter.counter_value("net.bytes") == 0

    def test_gauges_keep_last_value(self):
        meter = Meter()
        meter.gauge("sim.duration", 1.0)
        meter.gauge("sim.duration", 2.5)
        assert meter.gauge_value("sim.duration") == 2.5

    def test_histograms_bucket_and_summarize(self):
        meter = Meter()
        for value in (0.01, 0.02, 0.3, 5.0, 100.0):
            meter.observe("icc.commit.latency", value)
        hist = meter.histogram("icc.commit.latency")
        assert hist.count == 5
        assert hist.min == 0.01
        assert hist.max == 100.0
        assert abs(hist.total - 105.33) < 1e-9
        # 100.0 exceeds the last bound -> overflow bucket.
        assert hist.counts[-1] == 1
        assert sum(hist.counts) == hist.count

    def test_json_round_trip(self):
        meter = Meter()
        meter.count("net.messages", 7)
        meter.gauge("sim.duration", 3.5)
        meter.observe("icc.commit.latency", 0.15)
        buffer = io.StringIO()
        meter.write_json(buffer)
        buffer.seek(0)
        restored = Meter.read_json(buffer)
        assert restored.to_dict() == meter.to_dict()

    def test_merge_sums_counters_maxes_gauges_adds_buckets(self):
        a, b = Meter(), Meter()
        a.count("net.messages", 3)
        b.count("net.messages", 4)
        a.gauge("sim.duration", 5.0)
        b.gauge("sim.duration", 2.0)
        a.observe("icc.commit.latency", 0.1)
        b.observe("icc.commit.latency", 0.2)
        merged = merge_meters([a, b])
        assert merged.counter_value("net.messages") == 7
        assert merged.gauge_value("sim.duration") == 5.0
        hist = merged.histogram("icc.commit.latency")
        assert hist.count == 2
        assert hist.min == 0.1 and hist.max == 0.2

    def test_format_meter_is_stable_text(self):
        meter = Meter()
        meter.count("net.messages", 2)
        text = format_meter(meter)
        assert "net.messages" in text
        assert "2" in text


class TestHistogram:
    def test_merge_requires_same_buckets(self):
        a = Histogram(bounds=LATENCY_BUCKETS)
        b = Histogram(bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_dict_round_trip(self):
        hist = Histogram(bounds=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(3.0)
        restored = Histogram.from_dict(hist.as_dict())
        assert restored.bounds == hist.bounds
        assert restored.counts == hist.counts
        assert restored.min == 0.5 and restored.max == 3.0


class TestNullMeter:
    def test_noop_accepts_everything_cheaply(self):
        assert not NULL_METER.enabled
        assert not bool(NULL_METER)
        NULL_METER.count("anything.at.all")
        NULL_METER.gauge("whatever", 1.0)
        NULL_METER.observe("whatever", 1.0)
        assert NULL_METER.names() == []
        assert isinstance(NULL_METER, NullMeter)

    def test_real_meter_is_enabled_and_truthy_once_used(self):
        meter = Meter()
        assert meter.enabled
        assert not bool(meter)  # truthiness means "has data"
        meter.count("net.messages")
        assert bool(meter)
