"""Tests for the tracer core: ring buffer, registry enforcement, JSONL."""

from __future__ import annotations

import io

import pytest

from repro.obs import (
    EVENT_KINDS,
    NULL_TRACER,
    TraceEvent,
    Tracer,
    UnknownEventKind,
    read_jsonl,
    short_id,
    write_jsonl,
)


def emit(tracer: Tracer, kind: str = "sim.run", **overrides) -> None:
    fields = dict(time=1.0, party=1, protocol="test", round=None, kind=kind)
    fields.update(overrides)
    tracer.emit(**fields)


class TestTracer:
    def test_records_events_in_order(self):
        tracer = Tracer()
        emit(tracer, time=0.5)
        emit(tracer, "net.crash", time=1.5, party=2)
        events = tracer.events()
        assert [e.time for e in events] == [0.5, 1.5]
        assert events[1].kind == "net.crash"
        assert len(tracer) == 2

    def test_rejects_unregistered_kind(self):
        tracer = Tracer()
        with pytest.raises(UnknownEventKind):
            emit(tracer, "no.such.kind")

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(3):
            emit(tracer, time=float(i))
        with pytest.warns(RuntimeWarning, match="ring buffer full"):
            emit(tracer, time=3.0)
        emit(tracer, time=4.0)  # warns once, not per eviction
        assert len(tracer) == 3
        assert tracer.emitted == 5
        assert tracer.dropped == 2
        assert [e.time for e in tracer.events()] == [2.0, 3.0, 4.0]

    def test_filter_by_kind(self):
        tracer = Tracer()
        emit(tracer, "sim.run")
        emit(tracer, "net.crash")
        emit(tracer, "sim.run")
        assert len(tracer.events("sim.run")) == 2
        assert len(tracer.events("net.crash")) == 1

    def test_clear(self):
        tracer = Tracer()
        emit(tracer)
        tracer.clear()
        assert len(tracer) == 0 and tracer.emitted == 0


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(time=0.0, party=1, protocol="x", round=None, kind="anything")
        assert NULL_TRACER.events() == []
        assert len(NULL_TRACER) == 0
        assert list(NULL_TRACER) == []


class TestShortId:
    def test_sixteen_hex_chars(self):
        assert short_id(bytes(range(32))) == "0001020304050607"
        assert len(short_id(b"\xff" * 32)) == 16


class TestJsonlRoundTrip:
    def test_round_trip_through_buffer(self):
        events = [
            TraceEvent(time=0.1, party=1, protocol="ICC0", round=1,
                       kind="icc.block.proposed",
                       payload={"block": "aa" * 8, "parent": "bb" * 8,
                                "payload_bytes": 10, "rank": 0}),
            TraceEvent(time=0.2, party=0, protocol="net", round=None,
                       kind="net.partition",
                       payload={"group": [1, 2], "heal_time": 5.0}),
        ]
        buffer = io.StringIO()
        assert write_jsonl(events, buffer) == 2
        buffer.seek(0)
        assert read_jsonl(buffer) == events

    def test_round_trip_through_file(self, tmp_path):
        events = [
            TraceEvent(time=float(i), party=i % 3, protocol="sim", round=i,
                       kind="sim.run", payload={"events_processed": i, "until": None})
            for i in range(10)
        ]
        path = str(tmp_path / "trace.jsonl")
        assert write_jsonl(events, path) == 10
        assert read_jsonl(path) == events

    def test_bytes_payloads_hex_encoded(self):
        event = TraceEvent(time=0.0, party=1, protocol="x", round=None,
                           kind="sim.run", payload={"raw": b"\x01\x02"})
        buffer = io.StringIO()
        write_jsonl([event], buffer)
        buffer.seek(0)
        (loaded,) = read_jsonl(buffer)
        assert loaded.payload["raw"] == "0102"

    def test_tuples_become_lists(self):
        event = TraceEvent(time=0.0, party=1, protocol="x", round=None,
                           kind="sim.run", payload={"seq": (1, 2, 3)})
        buffer = io.StringIO()
        write_jsonl([event], buffer)
        buffer.seek(0)
        (loaded,) = read_jsonl(buffer)
        assert loaded.payload["seq"] == [1, 2, 3]


class TestRegistry:
    def test_every_kind_has_module_and_description(self):
        for name, spec in EVENT_KINDS.items():
            assert spec.name == name
            assert spec.module.startswith("repro.")
            assert spec.description


class TestWireKindsRoundTrip:
    """Every registered ``net.*``/``live.*`` kind — including the causal
    wire-span pair and the clock/STAT events — survives a headered JSONL
    export byte-for-byte."""

    def sample_event(self, index, spec):
        payload = {name: k for k, name in enumerate(spec.fields)}
        return TraceEvent(
            time=0.001 * index, party=1 + index % 4, protocol="net",
            round=index % 3 or None, kind=spec.name, payload=payload,
        )

    def test_all_wire_kinds_round_trip_with_header(self):
        specs = [
            spec for name, spec in sorted(EVENT_KINDS.items())
            if name.startswith(("net.", "live."))
        ]
        # The PR's new kinds must be part of this sweep, not just legacy.
        names = {spec.name for spec in specs}
        assert {"net.wire.send", "net.wire.recv",
                "live.clock.sample", "live.stat.request"} <= names

        tracer = Tracer()
        events = []
        for index, spec in enumerate(specs):
            event = self.sample_event(index, spec)
            # Registry enforcement: every one of these is emittable.
            tracer.emit(time=event.time, party=event.party,
                        protocol=event.protocol, round=event.round,
                        kind=event.kind, payload=event.payload)
            events.append(event)
        assert len(tracer) == len(specs)

        from repro.obs import read_jsonl_with_header, trace_header

        buffer = io.StringIO()
        header = trace_header(run_id="rt", party=1, cluster_id="c")
        assert write_jsonl(events, buffer, header=header) == len(events)
        buffer.seek(0)
        loaded_header, loaded = read_jsonl_with_header(buffer)
        assert loaded_header == header
        assert loaded == events
