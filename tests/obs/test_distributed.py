"""Clock alignment and distributed-trace collection (repro.obs.distributed).

The alignment tests build synthetic two/three-party timelines with a
*known* ground-truth clock relation, then check the estimator recovers
it within its own reported uncertainty — including the adversarial case
(asymmetric link delay) where a correct estimator must widen its bound
rather than silently mis-align.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import (
    ClockAlignment,
    CollectError,
    Meter,
    TraceEvent,
    collect_run,
    estimate_alignment,
    pair_deltas,
    read_jsonl_with_header,
    trace_header,
    write_jsonl,
)
from repro.obs.distributed import SCHEMA_VERSION, align_events, estimate_pair


def wire_pair(src, dst, seq, t_send, t_recv, nbytes=64):
    """A matched net.wire.send / net.wire.recv event pair; each side's
    time is that party's *local* clock reading."""
    send = TraceEvent(
        time=t_send, party=src, protocol="net", round=None,
        kind="net.wire.send",
        payload={"dst": dst, "seq": seq, "kind": "msg", "bytes": nbytes},
    )
    recv = TraceEvent(
        time=t_recv, party=dst, protocol="net", round=None,
        kind="net.wire.recv",
        payload={"src": src, "seq": seq, "kind": "msg", "bytes": nbytes},
    )
    return send, recv


def two_party_run(
    theta=0.030, fwd_delay=0.005, back_delay=0.005,
    count=20, spacing=0.05, drift=0.0,
):
    """Synthetic exchange between parties 1 and 2.

    Party 1's clock IS true time; party 2 reads ``true + theta + drift *
    true``.  Returns ``{1: events, 2: events}``.
    """

    def clock2(true):
        return true + theta + drift * true

    ev1, ev2 = [], []
    for k in range(count):
        t = spacing * (k + 1)
        # forward leg 1 -> 2
        send, recv = wire_pair(1, 2, k + 1, t, clock2(t + fwd_delay))
        ev1.append(send)
        ev2.append(recv)
        # backward leg 2 -> 1 (sent half a slot later)
        t_back = t + spacing / 2.0
        send, recv = wire_pair(
            2, 1, k + 1, clock2(t_back), t_back + back_delay
        )
        ev2.append(send)
        ev1.append(recv)
    return {1: ev1, 2: ev2}


class TestPairEstimation:
    def test_known_offset_recovered_within_reported_uncertainty(self):
        theta = 0.030
        events = two_party_run(theta=theta)
        alignment = estimate_alignment(events)
        assert alignment.reference == 1
        model = alignment.offsets[2]
        assert abs(model.offset - theta) <= model.uncertainty + 1e-9
        # Symmetric 5 ms links: the min-filter bound is the one-way delay.
        assert model.uncertainty <= 0.006

    def test_known_drift_recovered(self):
        theta, drift = 0.030, 2e-4
        events = two_party_run(
            theta=theta, drift=drift, fwd_delay=0.002, back_delay=0.002,
            count=60, spacing=1.0,
        )
        model = estimate_alignment(events).offsets[2]
        assert abs(model.drift - drift) < 5e-5
        for t in (0.0, 30.0, 60.0):
            true_theta = theta + drift * t
            assert abs(model.at(t) - true_theta) <= model.uncertainty + 1e-6

    def test_jitter_does_not_masquerade_as_drift(self):
        """Drift-free clocks with noisy delays must fit drift ~ 0 (the
        4x-rms acceptance guard)."""
        import random

        rng = random.Random(7)
        ev1, ev2 = [], []
        for k in range(40):
            t = 0.5 * (k + 1)
            send, recv = wire_pair(1, 2, k + 1, t, t + 0.01 + rng.uniform(0, 0.004))
            ev1.append(send)
            ev2.append(recv)
            send, recv = wire_pair(2, 1, k + 1, t + 0.25, t + 0.26 + rng.uniform(0, 0.004))
            ev2.append(send)
            ev1.append(recv)
        model = estimate_alignment({1: ev1, 2: ev2}).offsets[2]
        assert model.drift == 0.0
        assert abs(model.offset) <= model.uncertainty

    def test_asymmetric_delay_widens_bound_instead_of_misaligning(self):
        """1 ms out / 21 ms back: a naive midpoint estimator reports a
        confident -10 ms offset; the bound must cover the truth (0)."""
        asymmetric = estimate_alignment(
            two_party_run(theta=0.0, fwd_delay=0.001, back_delay=0.021)
        ).offsets[2]
        symmetric = estimate_alignment(
            two_party_run(theta=0.0, fwd_delay=0.001, back_delay=0.001)
        ).offsets[2]
        # Truth stays inside the reported bound...
        assert abs(asymmetric.offset - 0.0) <= asymmetric.uncertainty
        # ...because the bound widened to (at least) half the asymmetry.
        assert asymmetric.uncertainty >= 0.009
        assert symmetric.uncertainty < asymmetric.uncertainty

    def test_clock_sample_events_alone_suffice(self):
        """live.clock.sample events decompose back into both one-way
        directions, so a ping-only trace still aligns."""
        theta, rtt = 0.030, 0.010
        samples = [
            TraceEvent(
                time=0.1 * (k + 1), party=1, protocol="net", round=None,
                kind="live.clock.sample",
                payload={"peer": 2, "theta": theta, "rtt": rtt},
            )
            for k in range(5)
        ]
        model = estimate_alignment({1: samples, 2: []}).offsets[2]
        assert abs(model.offset - theta) <= model.uncertainty + 1e-9
        assert model.uncertainty <= rtt / 2.0 + 1e-9

    def test_unmatched_directions_yield_no_pair(self):
        send, recv = wire_pair(1, 2, 1, 0.0, 0.01)
        deltas = pair_deltas({1: [send], 2: [recv]})
        fwd, back = deltas[(1, 2)]
        assert len(fwd) == 1 and len(back) == 0
        assert estimate_pair(1, 2, fwd, back) is None

    def test_three_party_graph_solve(self):
        offsets = {1: 0.0, 2: 0.010, 3: -0.020}

        def local(p, true):
            return true + offsets[p]

        events = {1: [], 2: [], 3: []}
        seq = 0
        for a, b in ((1, 2), (2, 3), (1, 3)):
            for k in range(10):
                seq += 1
                t = 0.05 * seq
                send, recv = wire_pair(a, b, seq, local(a, t), local(b, t + 0.004))
                events[a].append(send)
                events[b].append(recv)
                send, recv = wire_pair(b, a, seq, local(b, t + 0.01), local(a, t + 0.014))
                events[b].append(send)
                events[a].append(recv)
        alignment = estimate_alignment(events)
        for party in (2, 3):
            model = alignment.offsets[party]
            assert abs(model.offset - offsets[party]) <= model.uncertainty + 1e-9
            assert model.uncertainty <= 0.005
        assert alignment.max_uncertainty < float("inf")

    def test_disconnected_party_gets_infinite_uncertainty(self):
        events = two_party_run()
        events[3] = []  # no samples linking party 3 to anyone
        alignment = estimate_alignment(events)
        assert alignment.offsets[3].offset == 0.0
        assert math.isinf(alignment.offsets[3].uncertainty)
        assert math.isinf(alignment.max_uncertainty)

    def test_align_events_shifts_onto_reference_timeline(self):
        theta = 0.030
        events = two_party_run(theta=theta, fwd_delay=0.002, back_delay=0.002)
        alignment = estimate_alignment(events)
        merged = align_events(events, alignment)
        assert [e.time for e in merged] == sorted(e.time for e in merged)
        # After alignment every wire span is causal: recv after send,
        # by roughly the true transit delay.
        sends = {
            (e.party, e.payload["dst"], e.payload["seq"]): e.time
            for e in merged if e.kind == "net.wire.send"
        }
        for e in merged:
            if e.kind == "net.wire.recv":
                t_send = sends[(e.payload["src"], e.party, e.payload["seq"])]
                transit = e.time - t_send
                assert -0.001 <= transit <= 0.01

    def test_alignment_dict_round_trip(self):
        alignment = estimate_alignment(two_party_run())
        clone = ClockAlignment.from_dict(
            json.loads(json.dumps(alignment.to_dict()))
        )
        assert clone.reference == alignment.reference
        for t in (0.0, 1.0, 7.5):
            assert clone.shift(2, t) == pytest.approx(alignment.shift(2, t))
        assert clone.max_uncertainty == pytest.approx(alignment.max_uncertainty)


class TestCollectRun:
    def write_run(self, tmp_path, run_id="run-A", schemas=None, parties=(1, 2)):
        events = two_party_run()
        for party in parties:
            header = trace_header(
                run_id=run_id, party=party, cluster_id="c",
                schema=(schemas or {}).get(party, SCHEMA_VERSION),
            )
            write_jsonl(
                events.get(party, []),
                str(tmp_path / f"trace-{party}.jsonl"),
                header=header,
            )
        return tmp_path

    def test_merges_traces_meters_and_results(self, tmp_path):
        self.write_run(tmp_path)
        meter = Meter()
        meter.count("net.messages", 5)
        meter.write_json(str(tmp_path / "meter-1.json"))
        meter.write_json(str(tmp_path / "meter-2.json"))
        (tmp_path / "result-1.json").write_text(
            json.dumps({"index": 1, "run_id": "run-A", "height": 3})
        )
        collected = collect_run(tmp_path)
        assert collected.run_id == "run-A"
        assert collected.cluster_id == "c"
        assert collected.parties == [1, 2]
        assert collected.meter.counter_value("net.messages") == 10
        assert collected.results[1]["height"] == 3
        assert [e.time for e in collected.events] == sorted(
            e.time for e in collected.events
        )
        # The merged trace is itself a headered, attributable export.
        header, events = read_jsonl_with_header(collected.merged_trace_path)
        assert header["run_id"] == "run-A"
        assert header["merged"] is True
        assert header["parties"] == [1, 2]
        assert len(events) == len(collected.events)
        assert (tmp_path / "merged-meter.json").exists()
        alignment = json.loads((tmp_path / "alignment.json").read_text())
        assert alignment["reference"] == 1
        assert "2" in alignment["offsets"]

    def test_write_false_leaves_directory_untouched(self, tmp_path):
        self.write_run(tmp_path)
        collected = collect_run(tmp_path, write=False)
        assert collected.merged_trace_path == ""
        assert not (tmp_path / "merged-trace.jsonl").exists()
        assert not (tmp_path / "alignment.json").exists()

    def test_mixed_run_ids_refused(self, tmp_path):
        self.write_run(tmp_path, run_id="run-A", parties=(1,))
        self.write_run(tmp_path, run_id="run-B", parties=(2,))
        with pytest.raises(CollectError, match="mixed run_ids"):
            collect_run(tmp_path)

    def test_headerless_trace_refused(self, tmp_path):
        events = two_party_run()
        write_jsonl(events[1], str(tmp_path / "trace-1.jsonl"))
        with pytest.raises(CollectError, match="no trace header"):
            collect_run(tmp_path)

    def test_unsupported_schema_refused(self, tmp_path):
        self.write_run(tmp_path, schemas={2: SCHEMA_VERSION + 1})
        with pytest.raises(CollectError, match="unsupported trace schema"):
            collect_run(tmp_path)

    def test_duplicate_party_refused(self, tmp_path):
        self.write_run(tmp_path, parties=(1, 2))
        events = two_party_run()
        write_jsonl(
            events[1],
            str(tmp_path / "trace-1-retry.jsonl"),
            header=trace_header(run_id="run-A", party=1, cluster_id="c"),
        )
        with pytest.raises(CollectError, match="duplicate trace for party 1"):
            collect_run(tmp_path)

    def test_empty_directory_refused(self, tmp_path):
        with pytest.raises(CollectError, match="no trace-"):
            collect_run(tmp_path)

    def test_result_from_other_run_refused(self, tmp_path):
        self.write_run(tmp_path)
        (tmp_path / "result-1.json").write_text(
            json.dumps({"index": 1, "run_id": "run-Z", "height": 3})
        )
        with pytest.raises(CollectError, match="does not match"):
            collect_run(tmp_path)
