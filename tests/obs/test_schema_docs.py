"""Cross-check docs/OBSERVABILITY.md against the live event registry.

The registry (``repro.obs.registry``) is the single source of truth for
the schema; the docs page must document every registered kind, and must
not document kinds that no longer exist.  Payload field names in the
docs tables must match the registry's declarations.
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro.obs import EVENT_KINDS

DOCS = pathlib.Path(__file__).resolve().parents[2] / "docs" / "OBSERVABILITY.md"

#: A schema-table row: first column is the backticked kind name.  Prose
#: mentions don't count as documentation — only a table row does, so
#: stale rows for removed kinds are flagged while narrative references
#: to attributes (e.g. ``sim.tracer``) are ignored.
ROW_RE = re.compile(r"^\| `([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+)` \|", re.MULTILINE)


def documented_kinds() -> set[str]:
    return set(ROW_RE.findall(DOCS.read_text(encoding="utf-8")))


class TestSchemaDocs:
    def test_docs_page_exists(self):
        assert DOCS.is_file(), "docs/OBSERVABILITY.md is missing"

    def test_every_registered_kind_is_documented(self):
        missing = set(EVENT_KINDS) - documented_kinds()
        assert not missing, f"kinds not documented in OBSERVABILITY.md: {sorted(missing)}"

    def test_no_stale_kinds_in_docs(self):
        stale = documented_kinds() - set(EVENT_KINDS)
        assert not stale, f"OBSERVABILITY.md documents unknown kinds: {sorted(stale)}"

    @pytest.mark.parametrize("kind", sorted(EVENT_KINDS))
    def test_payload_fields_are_documented(self, kind):
        """The doc row for each kind must mention every payload field."""
        spec = EVENT_KINDS[kind]
        text = DOCS.read_text(encoding="utf-8")
        row = next(
            (line for line in text.splitlines() if line.startswith(f"| `{kind}` |")),
            None,
        )
        assert row is not None, f"no table row for {kind}"
        for field in spec.fields:
            assert f"`{field}`" in row, f"{kind}: field {field!r} missing from docs row"
