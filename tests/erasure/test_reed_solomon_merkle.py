"""Tests for Reed–Solomon erasure coding and Merkle commitments."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.merkle import MerkleProof, MerkleTree, verify_inclusion
from repro.erasure.reed_solomon import (
    CodecParams,
    DecodeError,
    decode,
    encode,
    shard_length,
)


class TestCodecParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            CodecParams(0, 5)
        with pytest.raises(ValueError):
            CodecParams(6, 5)
        with pytest.raises(ValueError):
            CodecParams(1, 257)

    def test_shard_length(self):
        assert shard_length(10, 3) == 4
        assert shard_length(9, 3) == 3
        assert shard_length(0, 3) == 1  # minimum one byte


class TestRoundTrip:
    def test_systematic_prefix(self):
        """The first k shards are the data itself (systematic code)."""
        data = bytes(range(12))
        shards = encode(data, CodecParams(3, 6))
        assert b"".join(shards[:3]) == data

    def test_decode_from_parity_only(self):
        data = bytes(range(100))
        params = CodecParams(4, 12)
        shards = encode(data, params)
        recovered = decode({i: shards[i] for i in range(8, 12)}, params, len(data))
        assert recovered == data

    def test_decode_mixed(self):
        data = b"hello erasure coding world" * 10
        params = CodecParams(5, 13)
        shards = encode(data, params)
        subset = {0: shards[0], 6: shards[6], 7: shards[7], 11: shards[11], 12: shards[12]}
        assert decode(subset, params, len(data)) == data

    def test_k_equals_m(self):
        data = b"abc"
        params = CodecParams(3, 3)
        shards = encode(data, params)
        assert decode(dict(enumerate(shards)), params, 3) == data

    def test_k_one_replication(self):
        data = b"xyz"
        shards = encode(data, CodecParams(1, 4))
        assert all(s == data for s in shards)

    @given(
        st.binary(min_size=0, max_size=500),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=10),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data, k, extra, pyrng):
        m = k + extra
        params = CodecParams(k, m)
        shards = encode(data, params)
        chosen = pyrng.sample(range(m), k)
        assert decode({i: shards[i] for i in chosen}, params, len(data)) == data


class TestDecodeErrors:
    def test_too_few_shards(self):
        params = CodecParams(3, 6)
        shards = encode(b"data!", params)
        with pytest.raises(DecodeError):
            decode({0: shards[0], 1: shards[1]}, params, 5)

    def test_wrong_length_shard(self):
        params = CodecParams(3, 6)
        shards = encode(b"data data data", params)
        bad = {0: shards[0], 1: shards[1], 2: shards[2][:-1]}
        with pytest.raises(DecodeError):
            decode(bad, params, 14)

    def test_out_of_range_index(self):
        params = CodecParams(2, 4)
        shards = encode(b"dddd", params)
        with pytest.raises(DecodeError):
            decode({0: shards[0], 9: shards[1]}, params, 4)

    def test_corrupted_shard_gives_wrong_data(self):
        """RS erasure decoding trusts its inputs — corruption detection is
        the Merkle layer's job (as in the RBC protocol)."""
        params = CodecParams(2, 4)
        data = b"abcdefgh"
        shards = encode(data, params)
        tampered = bytes([shards[2][0] ^ 1]) + shards[2][1:]
        out = decode({2: tampered, 3: shards[3]}, params, len(data))
        assert out != data


class TestMerkle:
    def test_proofs_verify(self):
        leaves = [bytes([i]) * 8 for i in range(7)]
        tree = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            assert verify_inclusion(tree.root, leaf, tree.proof(i))

    def test_wrong_leaf_rejected(self):
        leaves = [b"a", b"b", b"c", b"d"]
        tree = MerkleTree(leaves)
        assert not verify_inclusion(tree.root, b"x", tree.proof(1))

    def test_wrong_position_rejected(self):
        """Leaf hashes bind the index, so position swaps fail."""
        leaves = [b"a", b"b", b"c", b"d"]
        tree = MerkleTree(leaves)
        proof = tree.proof(1)
        moved = MerkleProof(leaf_index=2, siblings=proof.siblings)
        assert not verify_inclusion(tree.root, b"b", moved)

    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        assert verify_inclusion(tree.root, b"only", tree.proof(0))

    def test_duplicate_tail_not_confusable(self):
        """Odd trees duplicate the last node; the index binding prevents
        proving the duplicate as a distinct leaf."""
        leaves = [b"a", b"b", b"c"]
        tree = MerkleTree(leaves)
        proof = tree.proof(2)
        forged = MerkleProof(leaf_index=3, siblings=proof.siblings)
        assert not verify_inclusion(tree.root, b"c", forged)

    def test_roots_differ(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"a", b"c"]).root
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_out_of_range_proof(self):
        with pytest.raises(IndexError):
            MerkleTree([b"a"]).proof(1)

    def test_proof_size_logarithmic(self):
        tree = MerkleTree([bytes([i]) for i in range(64)])
        assert len(tree.proof(0).siblings) == 6

    @given(st.lists(st.binary(min_size=0, max_size=16), min_size=1, max_size=33))
    @settings(max_examples=40, deadline=None)
    def test_all_proofs_verify_property(self, leaves):
        tree = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            assert verify_inclusion(tree.root, leaf, tree.proof(i))
