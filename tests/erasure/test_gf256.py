"""Property tests for GF(256) arithmetic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure import gf256

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestFieldLaws:
    @given(elements, elements)
    @settings(max_examples=100, deadline=None)
    def test_mul_commutative(self, a, b):
        assert gf256.mul(a, b) == gf256.mul(b, a)

    @given(elements, elements, elements)
    @settings(max_examples=100, deadline=None)
    def test_mul_associative(self, a, b, c):
        assert gf256.mul(gf256.mul(a, b), c) == gf256.mul(a, gf256.mul(b, c))

    @given(elements, elements, elements)
    @settings(max_examples=100, deadline=None)
    def test_distributive(self, a, b, c):
        assert gf256.mul(a, b ^ c) == gf256.mul(a, b) ^ gf256.mul(a, c)

    @given(elements)
    @settings(max_examples=50, deadline=None)
    def test_identities(self, a):
        assert gf256.mul(a, 1) == a
        assert gf256.mul(a, 0) == 0
        assert gf256.add(a, a) == 0  # characteristic 2

    @given(nonzero)
    @settings(max_examples=100, deadline=None)
    def test_inverse(self, a):
        assert gf256.mul(a, gf256.inv(a)) == 1

    @given(elements, nonzero)
    @settings(max_examples=100, deadline=None)
    def test_div_mul_roundtrip(self, a, b):
        assert gf256.mul(gf256.div(a, b), b) == a

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.inv(0)


class TestPower:
    @given(nonzero, st.integers(min_value=0, max_value=300))
    @settings(max_examples=60, deadline=None)
    def test_pow_matches_repeated_mul(self, a, e):
        expected = 1
        for _ in range(e % 255):
            expected = gf256.mul(expected, a)
        assert gf256.pow_(a, e) == expected

    def test_generator_order(self):
        """0x03 generates the full multiplicative group."""
        seen = set()
        x = 1
        for _ in range(255):
            seen.add(x)
            x = gf256.mul(x, 0x03)
        assert len(seen) == 255


class TestVectorized:
    @given(elements, st.binary(min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_scalar_vec_matches_scalar(self, c, data):
        vec = np.frombuffer(data, dtype=np.uint8)
        out = gf256.mul_scalar_vec(c, vec)
        for i, v in enumerate(vec):
            assert out[i] == gf256.mul(c, int(v))

    def test_xor_accumulate_in_place(self):
        a = np.array([1, 2, 3], dtype=np.uint8)
        b = np.array([3, 2, 1], dtype=np.uint8)
        gf256.xor_accumulate(a, b)
        assert list(a) == [2, 0, 2]

    def test_mul_by_zero_and_one(self):
        vec = np.array([5, 0, 255], dtype=np.uint8)
        assert list(gf256.mul_scalar_vec(0, vec)) == [0, 0, 0]
        assert list(gf256.mul_scalar_vec(1, vec)) == [5, 0, 255]
