"""TcpNetwork edge cases: real sockets, but millisecond-scale backoffs.

Every test runs a scenario coroutine under ``asyncio.run``; transports
are built with ``backoff_base=0.01`` so reconnect paths resolve in tens
of milliseconds, not the production 50 ms-to-2 s ladder.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.net.clock import WallClock
from repro.net.config import free_local_ports
from repro.net.framing import (
    FrameDecoder,
    ack_frame,
    decode_payload,
    hello_frame,
    message_frame,
)
from repro.net.transport import SimulatorOnlyFeature, TcpNetwork
from repro.obs import Meter


class StubReceiver:
    def __init__(self, index: int) -> None:
        self.index = index
        self.received: list = []

    def on_receive(self, message) -> None:
        self.received.append(message)


async def until(predicate, timeout: float = 5.0) -> None:
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError("condition not reached within timeout")
        await asyncio.sleep(0.005)


async def make_net(
    index: int, peers: dict, *, cluster_id: str = "t", meter=None
) -> tuple[TcpNetwork, StubReceiver]:
    clock = WallClock(loop=asyncio.get_running_loop(), seed=index)
    if meter is not None:
        clock.meter = meter
    net = TcpNetwork(
        clock, index, peers, cluster_id=cluster_id,
        backoff_base=0.01, backoff_cap=0.05,
    )
    receiver = StubReceiver(index)
    await net.start()
    net.attach(receiver)
    return net, receiver


def peer_map(n: int) -> dict:
    ports = free_local_ports(n)
    return {i + 1: ("127.0.0.1", ports[i]) for i in range(n)}


def run(coro):
    return asyncio.run(coro)


class TestDelivery:
    def test_broadcast_reaches_all_including_self(self):
        async def scenario():
            peers = peer_map(3)
            nets = [await make_net(i, peers) for i in (1, 2, 3)]
            try:
                nets[0][0].broadcast(1, b"round-1-payload")
                await until(
                    lambda: all(len(r.received) == 1 for _, r in nets)
                )
                return [r.received[0] for _, r in nets]
            finally:
                for net, _ in nets:
                    await net.stop()

        assert run(scenario()) == [b"round-1-payload"] * 3

    def test_send_is_point_to_point(self):
        async def scenario():
            peers = peer_map(3)
            nets = [await make_net(i, peers) for i in (1, 2, 3)]
            try:
                nets[0][0].send(1, 3, b"direct")
                await until(lambda: nets[2][1].received == [b"direct"])
                await asyncio.sleep(0.02)  # grace: nothing leaks to party 2
                return [r.received for _, r in nets]
            finally:
                for net, _ in nets:
                    await net.stop()

        assert run(scenario()) == [[], [], [b"direct"]]

    def test_metrics_follow_simulator_conventions(self):
        """Broadcast counts n messages but n-1 wire copies, exactly like
        repro.sim.network.Network (docs/TRANSPORT.md comparison table)."""

        async def scenario():
            peers = peer_map(3)
            meter = Meter()
            net, _ = await make_net(1, peers, meter=meter)
            try:
                message = b"y" * 10
                net.broadcast(1, message)
                from repro.sim.network import wire_size

                size = wire_size(message)
                return (
                    sum(net.metrics.msgs_sent.values()),
                    sum(net.metrics.bytes_sent.values()),
                    meter.counter_value("net.messages"),
                    size,
                )
            finally:
                await net.stop()

        msgs, wire_bytes, metered, size = run(scenario())
        assert msgs == 3  # paper convention: a broadcast counts n messages
        assert wire_bytes == size * 2  # but only n-1 copies cross the wire
        assert metered == 3

    def test_sender_must_be_local_party(self):
        async def scenario():
            peers = peer_map(2)
            net, _ = await make_net(1, peers)
            try:
                with pytest.raises(ValueError, match="cannot send as"):
                    net.broadcast(2, "spoof")
            finally:
                await net.stop()

        run(scenario())


class TestReconnect:
    def test_disconnect_mid_broadcast_queues_and_redelivers(self):
        """Messages broadcast while a peer is down sit in its outbound
        queue and arrive, in order, once the peer comes back."""

        async def scenario():
            peers = peer_map(2)
            a, _ = await make_net(1, peers)
            b, rb = await make_net(2, peers)
            a.broadcast(1, b"first")
            await until(lambda: b"first" in rb.received)

            await b.stop()  # peer crashes mid-run
            a.broadcast(1, b"second")
            a.broadcast(1, b"third")
            await asyncio.sleep(0.03)  # a few failed redial cycles

            b2, rb2 = await make_net(2, peers)  # peer restarts, same port
            try:
                await until(lambda: rb2.received == [b"second", b"third"])
                return a.metrics.msgs_sent, rb2.received
            finally:
                await a.stop()
                await b2.stop()

        _, redelivered = run(scenario())
        assert redelivered == [b"second", b"third"]

    def test_reconnect_counted(self):
        async def scenario():
            peers = peer_map(2)
            meter = Meter()
            a, _ = await make_net(1, peers, meter=meter)
            b, rb = await make_net(2, peers)
            a.broadcast(1, b"one")
            await until(lambda: rb.received == [b"one"])
            await b.stop()
            await asyncio.sleep(0.03)
            b2, rb2 = await make_net(2, peers)
            a.broadcast(1, b"two")
            try:
                await until(lambda: rb2.received == [b"two"])
                return meter.counter_value("live.reconnects")
            finally:
                await a.stop()
                await b2.stop()

        assert run(scenario()) >= 1


class TestInbound:
    async def _raw_connect(self, net: TcpNetwork, index: int = 1,
                           cluster_id: str = "t"):
        host, port = net.peers[net.index]
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(hello_frame(index, cluster_id))
        await writer.drain()
        return reader, writer

    def test_duplicate_connection_newest_wins(self):
        async def scenario():
            peers = peer_map(2)
            meter = Meter()
            b, rb = await make_net(2, peers, meter=meter)
            try:
                r1, w1 = await self._raw_connect(b)
                w1.write(message_frame(1, "via-first"))
                await w1.drain()
                await until(lambda: rb.received == ["via-first"])

                _r2, w2 = await self._raw_connect(b)  # duplicate from party 1
                w2.write(message_frame(2, "via-second"))
                await w2.drain()
                await until(lambda: rb.received == ["via-first", "via-second"])
                # The superseded connection is closed server-side: it got
                # its ACK for seq 1, then EOF.
                tail = await asyncio.wait_for(r1.read(), 2.0)
                w2.close()
                return meter.counter_value("live.dup_connections"), tail
            finally:
                await b.stop()

        dups, tail = run(scenario())
        assert dups == 1
        # EOF, possibly after ACKs (timestamp fields vary): every frame
        # still on the superseded connection must be an ACK for seq 1.
        for body in FrameDecoder().feed(tail):
            kind, payload = decode_payload(body)
            assert kind == "ack" and payload[0] == 1

    def test_retransmitted_duplicates_deduped(self):
        """The receiver delivers each link sequence number once — a
        retransmitted tail after a lost-ACK reconnect is absorbed."""

        async def scenario():
            peers = peer_map(2)
            b, rb = await make_net(2, peers)
            try:
                _r, w = await self._raw_connect(b)
                w.write(message_frame(1, "m1"))
                w.write(message_frame(2, "m2"))
                # Sender never saw the ACK: it retransmits 1..3.
                w.write(message_frame(1, "m1"))
                w.write(message_frame(2, "m2"))
                w.write(message_frame(3, "m3"))
                await w.drain()
                await until(lambda: len(rb.received) == 3)
                await asyncio.sleep(0.02)  # grace: no late duplicates
                w.close()
                return rb.received
            finally:
                await b.stop()

        assert run(scenario()) == ["m1", "m2", "m3"]

    def test_oversized_frame_closes_connection(self):
        async def scenario():
            peers = peer_map(2)
            meter = Meter()
            b, rb = await make_net(2, peers, meter=meter)
            try:
                reader, writer = await self._raw_connect(b)
                writer.write((b.max_frame + 1).to_bytes(4, "big"))
                await writer.drain()
                eof = await asyncio.wait_for(reader.read(1), 2.0)
                await until(lambda: b.frames_rejected == 1)
                return eof, meter.counter_value("live.frames.rejected")
            finally:
                await b.stop()

        eof, rejected = run(scenario())
        assert eof == b""
        assert rejected == 1

    def test_wrong_cluster_id_rejected(self):
        async def scenario():
            peers = peer_map(2)
            b, rb = await make_net(2, peers)
            try:
                reader, writer = await self._raw_connect(
                    b, cluster_id="other-cluster"
                )
                writer.write(message_frame(1, "smuggled"))
                await writer.drain()
                eof = await asyncio.wait_for(reader.read(1), 2.0)
                return eof, b.frames_rejected, rb.received
            finally:
                await b.stop()

        eof, rejected, received = run(scenario())
        assert eof == b""
        assert rejected == 1
        assert received == []

    def test_message_before_hello_rejected(self):
        async def scenario():
            peers = peer_map(2)
            b, rb = await make_net(2, peers)
            try:
                host, port = peers[2]
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(message_frame(1, "anonymous"))
                await writer.drain()
                eof = await asyncio.wait_for(reader.read(1), 2.0)
                return eof, rb.received
            finally:
                await b.stop()

        eof, received = run(scenario())
        assert eof == b""
        assert received == []


class TestSimulatorOnly:
    def test_fault_controls_raise_clearly(self):
        async def scenario():
            peers = peer_map(2)
            net, _ = await make_net(1, peers)
            try:
                with pytest.raises(SimulatorOnlyFeature, match="simulator-only"):
                    net.install_faults(object())
                with pytest.raises(SimulatorOnlyFeature):
                    net.crash(2)
                with pytest.raises(SimulatorOnlyFeature):
                    net.revive(2)
                with pytest.raises(SimulatorOnlyFeature):
                    net.add_partition({1}, 5.0)
                with pytest.raises(SimulatorOnlyFeature):
                    net.clear_faults()
            finally:
                await net.stop()

        run(scenario())

    def test_fault_injector_attach_fails(self):
        """The docs/FAULTS.md contract: attaching a simulator fault
        scenario to the live transport errors instead of silently doing
        nothing."""
        from repro.faults.inject import FaultInjector
        from repro.faults.scenario import LinkFault, Scenario

        async def scenario():
            peers = peer_map(2)
            net, _ = await make_net(1, peers)
            try:
                drill = Scenario(
                    name="live-drill", seed=1,
                    events=(LinkFault(start=0.0, end=1.0, drop_prob=0.5),),
                )
                with pytest.raises(SimulatorOnlyFeature):
                    FaultInjector(drill, net).install()
            finally:
                await net.stop()

        run(scenario())
