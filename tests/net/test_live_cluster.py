"""End-to-end: unmodified protocol parties finalize over real TCP."""

from __future__ import annotations

import asyncio
import warnings

import pytest

from repro.core.icc0 import ICC0Party
from repro.net.cluster import LiveCluster
from repro.net.config import local_live_config
from repro.net.live import summarize
from repro.net.party import LiveParty, generate_load_requests
from repro.obs import (
    Meter,
    Tracer,
    read_jsonl_with_header,
    trace_header,
    write_jsonl,
)


def quick_config(**overrides):
    defaults = dict(
        t=1, seed=5, epsilon=0.02, target_height=3, timeout=30.0,
        cluster_id="test-live",
    )
    defaults.update(overrides)
    return local_live_config(4, **defaults)


def run_cluster(config, target=None):
    async def scenario():
        async with LiveCluster(config) as cluster:
            ok = await cluster.wait_for_height(
                target if target is not None else config.target_height,
                config.timeout,
            )
            cluster.check_safety()
            return ok, cluster.results()

    return asyncio.run(scenario())


class TestLiveCluster:
    def test_four_parties_finalize_over_tcp(self):
        ok, results = run_cluster(quick_config())
        assert ok
        assert all(r["height"] >= 3 for r in results)
        # Every party is a real ICC0Party; prefix property held (checked
        # inside run_cluster) and the chains share the committed prefix.
        chains = [r["committed"] for r in results]
        shortest = min(len(c) for c in chains)
        assert shortest >= 3
        assert len({tuple(c[:shortest]) for c in chains}) == 1

    def test_client_load_commits_through_batching_pipeline(self):
        config = quick_config(
            target_height=4, load_requests=24, load_batch=8, seed=2,
        )

        async def scenario():
            async with LiveCluster(config) as cluster:
                observer = cluster.parties[0]
                loop = asyncio.get_running_loop()
                deadline = loop.time() + config.timeout
                # Rounds keep finalizing past target_height; wait for the
                # whole deterministic request set to commit.
                while observer.batcher.completed < config.load_requests:
                    assert loop.time() < deadline, "load did not drain"
                    await asyncio.sleep(0.01)
                cluster.check_safety()
                return cluster.results()

        results = asyncio.run(scenario())
        assert results[0]["requests_completed"] == 24
        latencies = results[0]["request_latencies"]
        assert len(latencies) == 24
        assert all(v > 0 for v in latencies)

    def test_summary_block(self):
        config = quick_config(load_requests=16, load_batch=8)
        ok, results = run_cluster(config)
        for record in results:
            record["reached_target"] = ok
        block = summarize(config, results)
        assert block["live_ok"] is True
        assert block["safety_ok"] is True
        assert block["parties_reporting"] == 4
        assert block["min_height"] >= config.target_height
        assert block["heights_per_sec"] > 0


class TestTraceExport:
    def test_ring_pressure_export_carries_trace_dropped(self, tmp_path):
        """A live run against a deliberately tiny ring buffer: the export
        must end in a ``trace.dropped`` summary and still round-trip
        through the headered JSONL layer event-for-event."""
        config = quick_config(seed=11)
        tracers = {i: Tracer(capacity=40) for i in range(1, 5)}
        meters = {i: Meter() for i in range(1, 5)}

        async def scenario():
            cluster = LiveCluster(
                config, per_party=lambda i: (tracers[i], meters[i])
            )
            async with cluster:
                ok = await cluster.wait_for_height(
                    config.target_height, config.timeout
                )
                cluster.check_safety()
                return ok

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # ring-full
            assert asyncio.run(scenario())

        for index, tracer in tracers.items():
            assert tracer.dropped > 0, "capacity=40 must overflow"
            exported = tracer.export_events()
            assert exported[-1].kind == "trace.dropped"
            assert exported[-1].payload == {
                "dropped": tracer.dropped,
                "emitted": tracer.emitted,
                "capacity": 40,
            }
            path = str(tmp_path / f"trace-{index}.jsonl")
            header = trace_header(
                run_id="ring-run", party=index, cluster_id=config.cluster_id
            )
            write_jsonl(exported, path, header=header)
            loaded_header, loaded = read_jsonl_with_header(path)
            assert loaded_header == header
            assert loaded == exported


class TestLiveParty:
    def test_party_is_unmodified_icc0(self):
        async def scenario():
            config = quick_config()
            live = LiveParty(config, 1, loop=asyncio.get_running_loop())
            try:
                assert type(live.party) is ICC0Party
                assert live.party.sim is live.clock
                assert live.party.network is live.network
            finally:
                await live.network.stop()

        asyncio.run(scenario())

    def test_index_validated(self):
        async def scenario():
            config = quick_config()
            with pytest.raises(ValueError, match="out of range"):
                LiveParty(config, 9, loop=asyncio.get_running_loop())

        asyncio.run(scenario())

    def test_load_requests_deterministic_across_parties(self):
        """Every party derives the same ingress set from the shared seed
        — ids must agree or chain dedup and latency tracking break."""
        from repro.workloads.batching import BatchSpec, RequestBatcher

        config = quick_config(load_requests=12, seed=8)
        batchers = [RequestBatcher(BatchSpec(auth="fast"), seed=8) for _ in range(2)]
        sets = [
            [r.request_id for r in generate_load_requests(config, b)]
            for b in batchers
        ]
        assert sets[0] == sets[1]
        assert len(set(sets[0])) == 12
