"""Framing layer: partial delivery, oversized rejection, payload decoding."""

from __future__ import annotations

import pytest

from repro.net.framing import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    FrameError,
    OversizedFrame,
    ack_frame,
    decode_payload,
    encode_frame,
    hello_frame,
    message_frame,
    stat_frame,
    stat_reply_frame,
)


class TestEncode:
    def test_round_trip_message(self):
        frame = message_frame(9, {"hello": 1, "world": [2, 3]})
        decoder = FrameDecoder()
        (body,) = decoder.feed(frame)
        kind, payload = decode_payload(body)
        assert kind == "msg"
        assert payload == (9, 0, {"hello": 1, "world": [2, 3]})

    def test_round_trip_message_timestamp(self):
        frame = message_frame(9, "m", ts_ns=123_456_789)
        (body,) = FrameDecoder().feed(frame)
        assert decode_payload(body) == ("msg", (9, 123_456_789, "m"))

    def test_round_trip_hello(self):
        frame = hello_frame(7, "cluster-x")
        (body,) = FrameDecoder().feed(frame)
        assert decode_payload(body) == ("hello", (7, "cluster-x", 0))

    def test_round_trip_hello_timestamp(self):
        frame = hello_frame(7, "cluster-x", ts_ns=42)
        (body,) = FrameDecoder().feed(frame)
        assert decode_payload(body) == ("hello", (7, "cluster-x", 42))

    def test_round_trip_ack(self):
        (body,) = FrameDecoder().feed(ack_frame(41))
        assert decode_payload(body) == ("ack", (41, 0, 0, 0))

    def test_round_trip_ack_clock_sample(self):
        """ACKs piggyback the NTP-style sample: echoed peer send time,
        local receive time, ACK send time."""
        frame = ack_frame(41, echo_ns=111, recv_ns=222, send_ns=333)
        (body,) = FrameDecoder().feed(frame)
        assert decode_payload(body) == ("ack", (41, 111, 222, 333))

    def test_round_trip_stat(self):
        (body,) = FrameDecoder().feed(stat_frame())
        assert decode_payload(body) == ("stat", None)

    def test_round_trip_stat_reply(self):
        snapshot = {"index": 3, "height": 17, "clock_sync": {"2": {}}}
        (body,) = FrameDecoder().feed(stat_reply_frame(snapshot))
        assert decode_payload(body) == ("stat_reply", snapshot)

    def test_empty_body_rejected(self):
        with pytest.raises(FrameError):
            encode_frame(b"")

    def test_oversized_body_rejected_at_encode(self):
        with pytest.raises(OversizedFrame):
            encode_frame(b"x" * 101, max_frame=100)

    def test_non_positive_hello_index_rejected(self):
        with pytest.raises(FrameError):
            hello_frame(0, "c")

    def test_non_positive_msg_seq_rejected(self):
        with pytest.raises(FrameError, match="start at 1"):
            message_frame(0, "m")

    def test_negative_ack_rejected(self):
        with pytest.raises(FrameError):
            ack_frame(-1)

    def test_negative_timestamp_clamped(self):
        """Monotonic clocks never go negative; a bogus caller value is
        clamped rather than crashing the wire."""
        (body,) = FrameDecoder().feed(message_frame(1, "m", ts_ns=-5))
        assert decode_payload(body) == ("msg", (1, 0, "m"))


class TestDecodePayload:
    def test_unknown_type_byte(self):
        with pytest.raises(FrameError, match="unknown frame type"):
            decode_payload(b"\x7fjunk")

    def test_truncated_hello(self):
        with pytest.raises(FrameError, match="truncated HELLO"):
            decode_payload(b"\x01\x00\x00")

    def test_truncated_msg(self):
        with pytest.raises(FrameError, match="truncated MSG"):
            decode_payload(b"\x02\x00\x00\x00\x00")

    def test_undecodable_pickle(self):
        with pytest.raises(FrameError, match="undecodable MSG"):
            decode_payload(
                b"\x02" + (1).to_bytes(8, "big") + (0).to_bytes(8, "big")
                + b"not-a-pickle"
            )

    def test_malformed_ack(self):
        with pytest.raises(FrameError, match="malformed ACK"):
            decode_payload(b"\x03\x00\x01")

    def test_malformed_stat(self):
        with pytest.raises(FrameError, match="malformed STAT"):
            decode_payload(b"\x04extra")

    def test_undecodable_stat_reply(self):
        with pytest.raises(FrameError, match="undecodable STAT_REPLY"):
            decode_payload(b"\x05not json")

    def test_stat_reply_must_be_object(self):
        with pytest.raises(FrameError, match="not a JSON object"):
            decode_payload(b"\x05[1, 2]")

    def test_empty_body(self):
        with pytest.raises(FrameError):
            decode_payload(b"")


class TestFrameDecoder:
    def test_byte_by_byte_partial_delivery(self):
        """TCP gives no boundaries: one byte at a time must still parse."""
        frame = message_frame(1, ("block", 42))
        decoder = FrameDecoder()
        bodies = []
        for i in range(len(frame)):
            bodies += decoder.feed(frame[i : i + 1])
        assert len(bodies) == 1
        assert decode_payload(bodies[0]) == ("msg", (1, 0, ("block", 42)))
        assert decoder.pending_bytes == 0

    def test_glued_frames_split(self):
        frames = message_frame(1, "a") + message_frame(2, "b") + message_frame(3, "c")
        bodies = FrameDecoder().feed(frames)
        assert [decode_payload(b)[1] for b in bodies] == [
            (1, 0, "a"), (2, 0, "b"), (3, 0, "c"),
        ]

    def test_frame_split_across_feeds(self):
        f1, f2 = message_frame(1, "a" * 100), message_frame(2, "b")
        stream = f1 + f2
        decoder = FrameDecoder()
        cut = len(f1) - 3  # first frame still incomplete after chunk 1
        bodies = decoder.feed(stream[:cut])
        assert bodies == []
        assert decoder.pending_bytes == cut
        bodies = decoder.feed(stream[cut:])
        assert [decode_payload(b)[1] for b in bodies] == [
            (1, 0, "a" * 100), (2, 0, "b"),
        ]

    def test_oversized_rejected_before_body_arrives(self):
        """The cap triggers on the declared length — no buffering of the
        (potentially hostile) body happens first."""
        decoder = FrameDecoder(max_frame=1024)
        declared = (1024 + 1).to_bytes(4, "big")
        with pytest.raises(OversizedFrame):
            decoder.feed(declared)  # length prefix alone trips it

    def test_zero_length_frame_rejected(self):
        with pytest.raises(FrameError, match="zero-length"):
            FrameDecoder().feed(b"\x00\x00\x00\x00")

    def test_default_cap_accepts_large_block(self):
        payload = b"p" * (4 * 1024 * 1024)  # a "few megabytes" block
        frame = message_frame(1, payload)
        assert len(frame) < DEFAULT_MAX_FRAME
        (body,) = FrameDecoder().feed(frame)
        assert decode_payload(body)[1] == (1, 0, payload)
