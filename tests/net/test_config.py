"""LiveConfig: JSON round-trip, validation, port allocation."""

from __future__ import annotations

import json

import pytest

from repro.net.config import (
    LiveConfig,
    PeerSpec,
    free_local_ports,
    load_live_config,
    local_live_config,
    with_ports,
)


def make_config(**overrides) -> LiveConfig:
    return local_live_config(4, ports=[9001, 9002, 9003, 9004], **overrides)


class TestValidation:
    def test_peer_count_must_match_n(self):
        with pytest.raises(ValueError, match="names 3 peers but n=4"):
            LiveConfig(
                cluster_id="c", n=4,
                peers=tuple(PeerSpec(i, "h", 9000 + i) for i in (1, 2, 3)),
            )

    def test_peer_indices_must_be_dense(self):
        with pytest.raises(ValueError, match="must be exactly 1..3"):
            LiveConfig(
                cluster_id="c", n=3,
                peers=tuple(PeerSpec(i, "h", 9000 + i) for i in (1, 2, 4)),
            )

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            make_config(protocol="pbft")

    def test_target_height_positive(self):
        with pytest.raises(ValueError, match="target_height"):
            make_config(target_height=0)


class TestRoundTrip:
    def test_json_round_trip(self, tmp_path):
        config = make_config(
            cluster_id="rt", seed=9, protocol="icc1", t=1,
            load_requests=80, epsilon=0.01,
        )
        path = tmp_path / "cluster.json"
        config.save(str(path))
        assert load_live_config(str(path)) == config

    def test_unknown_keys_rejected(self, tmp_path):
        data = make_config().to_json()
        data["surprise"] = True
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="unknown config keys"):
            load_live_config(str(path))

    def test_peer_table_view(self):
        config = make_config()
        table = config.peer_table()
        assert table[2] == ("127.0.0.1", 9002)
        assert sorted(table) == [1, 2, 3, 4]
        assert config.peer(3).port == 9003
        with pytest.raises(KeyError):
            config.peer(9)


class TestPorts:
    def test_free_ports_are_distinct(self):
        ports = free_local_ports(8)
        assert len(set(ports)) == 8
        assert all(p > 0 for p in ports)

    def test_local_config_allocates_fresh_ports(self):
        config = local_live_config(4, cluster_id="x")
        assert len({p.port for p in config.peers}) == 4

    def test_with_ports_preserves_everything_else(self):
        config = make_config(seed=5)
        moved = with_ports(config, [1001, 1002, 1003, 1004])
        assert [p.port for p in moved.peers] == [1001, 1002, 1003, 1004]
        assert moved.seed == 5
        assert moved.cluster_id == config.cluster_id
        with pytest.raises(ValueError):
            with_ports(config, [1, 2])
