"""The STAT metrics endpoint and ``python -m repro top``.

All smoke tests run against an in-process :class:`LiveCluster` — same
sockets and framing as separate processes, but startable inside a test.
"""

from __future__ import annotations

import asyncio
import threading
from types import SimpleNamespace

from repro.net.cluster import LiveCluster
from repro.net.config import local_live_config
from repro.net.stat import fetch_stats, render_table, top


def stat_config(**overrides):
    defaults = dict(
        t=1, seed=3, epsilon=0.02, target_height=500, timeout=120.0,
        cluster_id="stat-test", load_requests=24, load_batch=8,
    )
    defaults.update(overrides)
    return local_live_config(4, **defaults)


class TestFetchStats:
    def test_two_polls_heights_advance_and_counters_match(self):
        """The satellite smoke: poll twice mid-run; heights advance
        between polls and the endpoint's connect/reconnect counters are
        the transport's own."""

        async def scenario():
            config = stat_config()
            async with LiveCluster(config) as cluster:
                # Let the cluster get off the ground before the first poll.
                await cluster.parties[0].wait_for_height(2, 30.0)
                first = await fetch_stats(config, timeout=5.0)
                floor = max(s["height"] for s in first.values()) + 2
                await cluster.parties[0].wait_for_height(floor, 30.0)
                second = await fetch_stats(config, timeout=5.0)
                counters = {
                    live.index: (
                        live.network.connects_total,
                        live.network.reconnects_total,
                    )
                    for live in cluster.parties
                }
                run_id = config.effective_run_id()
                return first, second, counters, run_id

        first, second, counters, run_id = asyncio.run(scenario())
        assert sorted(first) == [1, 2, 3, 4]
        assert all(snap is not None for snap in first.values())
        for index in first:
            assert second[index]["height"] >= first[index]["height"]
        # Heights advanced between the polls (cluster kept finalizing).
        assert sum(s["height"] for s in second.values()) > sum(
            s["height"] for s in first.values()
        )
        for index, snap in second.items():
            assert snap["index"] == index
            assert snap["run_id"] == run_id
            assert snap["cluster_id"] == "stat-test"
            connects, reconnects = counters[index]
            # A stable localhost run: no redials after the poll, so the
            # reported counters equal the transport's own totals.
            assert snap["reconnects"] == reconnects
            assert snap["connects"] <= connects  # never invented
            assert snap["connects"] >= 3  # dialled every other party
            assert snap["net_messages"] > 0

    def test_unreachable_cluster_reports_none(self):
        async def scenario():
            config = stat_config()  # ports allocated but nobody listening
            return await fetch_stats(config, timeout=0.3)

        stats = asyncio.run(scenario())
        assert stats == {1: None, 2: None, 3: None, 4: None}


class TestRenderTable:
    def test_rows_for_reachable_and_unreachable(self):
        stats = {
            1: {"index": 1, "height": 7, "pool_depth": 3, "link_backlog": 0,
                "connects": 3, "reconnects": 1, "requests_completed": 12,
                "request_p50_s": 0.025, "request_p99_s": 0.060,
                "net_messages": 240, "net_bytes": 50000},
            2: None,
        }
        table = render_table(stats)
        lines = table.splitlines()
        assert lines[0].split() == [
            "party", "height", "pool", "backlog", "conn", "reconn",
            "reqs", "p50ms", "p99ms", "msgs", "bytes",
        ]
        assert lines[1].split() == [
            "1", "7", "3", "0", "3", "1", "12", "25.0", "60.0",
            "240", "50000",
        ]
        assert "(unreachable)" in lines[2]

    def test_missing_latencies_render_as_dash(self):
        table = render_table({1: {"index": 1, "request_p50_s": None}})
        assert table.splitlines()[1].count("-") == 2


class TestTopCli:
    def args(self, config_path, **overrides):
        defaults = dict(
            config=config_path, interval=0.05, iterations=2,
            timeout=2.0, json=False,
        )
        defaults.update(overrides)
        return SimpleNamespace(**defaults)

    def test_top_polls_running_cluster(self, tmp_path, capsys):
        config = stat_config(seed=4)
        config_path = str(tmp_path / "cluster.json")
        config.save(config_path)
        started = threading.Event()
        stop = threading.Event()

        def run_cluster():
            async def main():
                async with LiveCluster(config):
                    started.set()
                    while not stop.is_set():
                        await asyncio.sleep(0.02)

            asyncio.run(main())

        thread = threading.Thread(target=run_cluster, daemon=True)
        thread.start()
        assert started.wait(30.0), "cluster did not start"
        try:
            status = top(self.args(config_path))
        finally:
            stop.set()
            thread.join(30.0)
        assert status == 0
        out = capsys.readouterr().out
        assert "4/4 parties reachable" in out
        assert out.count("party height") == 2  # one table per poll

    def test_top_fails_when_nothing_listens(self, tmp_path, capsys):
        config = stat_config(seed=5)
        config_path = str(tmp_path / "cluster.json")
        config.save(config_path)
        status = top(self.args(config_path, iterations=1, timeout=0.3))
        assert status == 1
        assert "0/4 parties reachable" in capsys.readouterr().out
