"""WallClock: the Simulation scheduling surface over an asyncio loop."""

from __future__ import annotations

import asyncio

import pytest

from repro.net.clock import WallClock
from repro.obs import NULL_METER, NULL_TRACER


def run(coro):
    return asyncio.run(coro)


class TestWallClock:
    def test_now_starts_near_zero_and_advances(self):
        async def scenario():
            clock = WallClock(loop=asyncio.get_running_loop())
            first = clock.now
            await asyncio.sleep(0.01)
            return first, clock.now

        first, later = run(scenario())
        assert first == pytest.approx(0.0, abs=0.005)
        assert later > first

    def test_schedule_runs_action(self):
        async def scenario():
            clock = WallClock(loop=asyncio.get_running_loop())
            fired = asyncio.Event()
            clock.schedule(0.0, fired.set)
            await asyncio.wait_for(fired.wait(), 1.0)
            return True

        assert run(scenario())

    def test_negative_delay_rejected(self):
        async def scenario():
            clock = WallClock(loop=asyncio.get_running_loop())
            with pytest.raises(ValueError):
                clock.schedule(-0.1, lambda: None)

        run(scenario())

    def test_schedule_at_clamps_past_times(self):
        """Unlike the simulator, a slightly-past target must run ASAP, not
        raise — wall time moves between computing the target and calling."""

        async def scenario():
            clock = WallClock(loop=asyncio.get_running_loop())
            fired = asyncio.Event()
            clock.schedule_at(clock.now - 5.0, fired.set)
            await asyncio.wait_for(fired.wait(), 1.0)
            return True

        assert run(scenario())

    def test_default_sinks_are_null(self):
        async def scenario():
            clock = WallClock(loop=asyncio.get_running_loop())
            assert clock.tracer is NULL_TRACER
            assert clock.meter is NULL_METER

        run(scenario())

    def test_fork_rng_streams_differ(self):
        async def scenario():
            clock = WallClock(loop=asyncio.get_running_loop(), seed=3)
            a, b = clock.fork_rng("a"), clock.fork_rng("a")
            return a.random(), b.random()

        a, b = run(scenario())
        assert a != b  # each fork consumes parent entropy

    def test_seeded_rng_reproducible(self):
        async def scenario(seed):
            clock = WallClock(loop=asyncio.get_running_loop(), seed=seed)
            return clock.rng.random()

        assert run(scenario(11)) == run(scenario(11))
