"""Tests for the metrics collector."""

from __future__ import annotations

from repro.sim.metrics import Metrics, NullMetrics


class TestBroadcastConventions:
    """Pin the two deliberately-different broadcast accounting rules.

    The paper counts one broadcast as n messages ("one party broadcasting
    a message contributes a term of n to the message complexity",
    Section 1), self-delivery included; bytes are charged only for the
    n - 1 copies that cross the wire.  The ``on_broadcast`` docstring
    documents both — this class is the test it points at.
    """

    def test_messages_count_n_per_broadcast(self):
        m = Metrics(n=7)
        m.on_broadcast(3, 100, "block", round=2)
        assert m.msgs_sent[3] == 7
        assert m.msgs_by_kind["block"] == 7
        assert m.msgs_by_round[2] == 7

    def test_bytes_charge_n_minus_1_wire_copies(self):
        m = Metrics(n=7)
        m.on_broadcast(3, 100, "block")
        assert m.bytes_sent[3] == 100 * 6
        assert m.bytes_by_kind["block"] == 100 * 6

    def test_send_counts_one_message_full_bytes(self):
        m = Metrics(n=7)
        m.on_send(3, 100, "share", round=2)
        assert m.msgs_sent[3] == 1
        assert m.bytes_sent[3] == 100
        assert m.msgs_by_round[2] == 1


class TestTraffic:
    def test_mean_egress(self):
        m = Metrics(n=2)
        m.on_broadcast(1, 1000, "block")  # 1000 bytes to 1 other party
        assert m.mean_sent_bits_per_second(horizon=1.0) == 1000 * 8 / 2

    def test_max_egress_is_bottleneck_measure(self):
        m = Metrics(n=3)
        m.on_send(1, 900, "block")
        m.on_send(2, 100, "block")
        assert m.max_sent_bits_per_second(horizon=1.0) == 900 * 8

    def test_zero_horizon(self):
        m = Metrics(n=2)
        assert m.mean_sent_bits_per_second(0.0) == 0.0
        assert m.max_sent_bits_per_second(0.0) == 0.0


class TestCommits:
    def test_blocks_per_second_per_observer(self):
        m = Metrics(n=2)
        for k in range(1, 6):
            m.on_commit(time=float(k), observer=1, round=k, proposer=1, payload_bytes=0)
        m.on_commit(time=1.0, observer=2, round=1, proposer=1, payload_bytes=0)
        assert m.blocks_per_second(1, horizon=5.0) == 1.0
        assert m.blocks_per_second(2, horizon=5.0) == 0.2

    def test_latencies_skip_unknown_propose_time(self):
        m = Metrics(n=2)
        m.on_commit(time=3.0, observer=1, round=1, proposer=1, payload_bytes=0, proposed_at=1.0)
        m.on_commit(time=3.0, observer=1, round=2, proposer=1, payload_bytes=0)  # unknown
        assert m.commit_latencies() == [2.0]


class TestRounds:
    def test_round_durations(self):
        m = Metrics(n=2)
        m.on_round_entry(1, 1, 0.0)
        m.on_round_entry(1, 2, 0.2)
        m.on_round_entry(1, 3, 0.5)
        durations = m.round_durations(1)
        assert durations == {1: 0.2, 2: 0.3}

    def test_round_entry_keeps_first(self):
        m = Metrics(n=2)
        m.on_round_entry(1, 1, 0.0)
        m.on_round_entry(1, 1, 9.9)  # duplicate ignored
        assert m.round_entry[(1, 1)] == 0.0


class TestSummaryAndNull:
    def test_summary_keys(self):
        m = Metrics(n=2)
        m.count("things", 3)
        summary = m.summary(horizon=10.0)
        assert summary["n"] == 2
        assert summary["counters"]["things"] == 3

    def test_null_metrics_swallow_everything(self):
        m = NullMetrics()
        m.on_broadcast(1, 100, "x")
        m.on_send(1, 100, "x")
        m.count("x")
        m.on_commit(time=1.0, observer=1, round=1, proposer=1, payload_bytes=0)
        m.on_round_entry(1, 1, 0.0)
        assert not m.bytes_sent and not m.commits
