"""Property-based tests for the delay models' contracts."""

from __future__ import annotations

from random import Random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.delays import (
    FixedDelay,
    IntermittentSynchrony,
    PartialSynchrony,
    WanDelay,
)

times = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
pairs = st.tuples(st.integers(1, 40), st.integers(1, 40))


class TestEventualDelivery:
    @given(times, pairs, st.integers(0, 2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_partial_synchrony_delivers_by_gst_plus_base(self, now, pair, seed):
        """No message is ever delayed past GST + one base delay."""
        model = PartialSynchrony(base=FixedDelay(0.1), gst=500.0, max_async=1e6)
        sender, receiver = pair
        delay = model.sample(sender, receiver, now, Random(seed))
        assert delay >= 0
        assert now + delay <= max(now, 500.0) + 0.1 + 1e-6

    @given(times, pairs, st.integers(0, 2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_intermittent_arrivals_land_in_sync_windows(self, now, pair, seed):
        model = IntermittentSynchrony(base=FixedDelay(0.05), period=10.0, sync_len=3.0)
        sender, receiver = pair
        delay = model.sample(sender, receiver, now, Random(seed))
        assert delay >= 0.05 - 1e-9
        assert model.in_sync_window(now + delay)

    @given(times, pairs, st.integers(0, 2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_wan_delays_positive_and_bounded(self, now, pair, seed):
        model = WanDelay(jitter_sigma=0.2)
        sender, receiver = pair
        rng = Random(seed)
        delay = model.sample(sender, receiver, now, rng)
        if sender == receiver:
            assert delay == 0.0
        else:
            assert 0.0 < delay < 1.0  # base <= 55 ms, jitter is log-normal


class TestDeterminism:
    @given(st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_wan_base_latency_reproducible_per_seeded_stream(self, seed):
        def draw():
            model = WanDelay(jitter_sigma=0.0)
            rng = Random(seed)
            return [model.sample(1, j, 0.0, rng) for j in range(2, 10)]

        assert draw() == draw()
