"""Edge-case and equivalence tests for the two event-queue implementations.

``CalendarEventQueue`` (the default) must be observationally identical to
``HeapEventQueue`` (the legacy single-heap reference): same pop order,
same cancellation semantics, same ``len``.  The property test drives both
with the same randomized schedule/pop/cancel program and compares every
observable after every step.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import CalendarEventQueue, EventQueue, HeapEventQueue

QUEUES = [HeapEventQueue, CalendarEventQueue]


def _noop() -> None:
    pass


class TestDefault:
    def test_default_is_calendar(self):
        assert EventQueue is CalendarEventQueue


@pytest.mark.parametrize("queue_cls", QUEUES)
class TestEdgeCases:
    def test_cancel_then_peek(self, queue_cls):
        q = queue_cls()
        q.schedule(1.0, _noop).cancel()
        later = q.schedule(2.0, _noop)
        assert q.peek_time() == 2.0
        assert q.pop().seq == later._event.seq
        assert q.peek_time() is None

    def test_cancel_all_then_drain(self, queue_cls):
        q = queue_cls()
        handles = [q.schedule(float(i % 5), _noop) for i in range(20)]
        for handle in handles:
            handle.cancel()
        assert len(q) == 0
        assert not q
        assert q.peek_time() is None
        assert q.pop() is None

    def test_len_is_live_count(self, queue_cls):
        q = queue_cls()
        handles = [q.schedule(float(i), _noop) for i in range(10)]
        assert len(q) == 10
        handles[3].cancel()
        assert len(q) == 9
        handles[3].cancel()  # double-cancel is a no-op
        assert len(q) == 9
        q.pop()
        assert len(q) == 8
        # cancel after pop must not corrupt the count
        handles[0].cancel()
        assert len(q) == 8

    def test_negative_time_rejected(self, queue_cls):
        q = queue_cls()
        with pytest.raises(ValueError):
            q.schedule(-0.5, _noop)

    def test_same_instant_fifo(self, queue_cls):
        q = queue_cls()
        fired = []
        for i in range(50):
            q.schedule(1.0, lambda i=i: fired.append(i))
        while (e := q.pop()) is not None:
            e.action()
        assert fired == list(range(50))

    def test_handle_cancelled_flag(self, queue_cls):
        q = queue_cls()
        handle = q.schedule(1.0, _noop)
        assert not handle.cancelled
        handle.cancel()
        assert handle.cancelled


class TestCalendarInternals:
    """Paths specific to the calendar queue: window rebuilds and overflow."""

    def test_rebuild_over_wide_time_span(self):
        q = CalendarEventQueue()
        times = [float(i * 1000) for i in range(10)] + [0.5, 1.5, 2.5]
        for t in times:
            q.schedule(t, _noop)
        assert [q.pop().time for _ in range(len(times))] == sorted(times)

    def test_schedule_before_window_start(self):
        q = CalendarEventQueue()
        for t in (10.0, 11.0, 12.0):
            q.schedule(t, _noop)
        assert q.pop().time == 10.0  # rebuild anchors the window at 10.0
        q.schedule(0.25, _noop)  # before the window: the early heap
        assert q.peek_time() == 0.25
        assert [q.pop().time for _ in range(3)] == [0.25, 11.0, 12.0]

    def test_cancelled_events_dropped_at_rebuild(self):
        q = CalendarEventQueue()
        handles = [q.schedule(float(i * 100), _noop) for i in range(8)]
        for handle in handles[::2]:
            handle.cancel()
        assert [q.pop().time for _ in range(4)] == [100.0, 300.0, 500.0, 700.0]
        assert q.pop() is None

    def test_burst_of_identical_times_across_rebuilds(self):
        q = CalendarEventQueue()
        fired = []
        for i in range(100):
            q.schedule(5.0, lambda i=i: fired.append(i))
        q.schedule(9999.0, _noop)
        while (e := q.pop()) is not None:
            e.action()
        assert fired == list(range(100))


#: One step of the randomized queue program: (op, operand).
_steps = st.lists(
    st.tuples(
        st.sampled_from(["schedule", "pop", "cancel", "peek"]),
        st.integers(min_value=0, max_value=400),
    ),
    min_size=1,
    max_size=120,
)


class TestEquivalence:
    """Property pin: calendar and heap queues are observationally equal."""

    @given(_steps)
    @settings(max_examples=200, deadline=None)
    def test_same_observable_behaviour(self, steps):
        heap, calendar = HeapEventQueue(), CalendarEventQueue()
        heap_handles, calendar_handles = [], []
        now = 0.0
        for op, operand in steps:
            if op == "schedule":
                # Coarse quantization (and an occasional far-future jump)
                # forces ties and overflow/rebuild traffic.
                time = now + (operand % 40) / 8.0 + (500.0 if operand % 11 == 0 else 0.0)
                heap_handles.append(heap.schedule(time, _noop))
                calendar_handles.append(calendar.schedule(time, _noop))
            elif op == "pop":
                a, b = heap.pop(), calendar.pop()
                if a is None:
                    assert b is None
                else:
                    assert (a.time, a.seq) == (b.time, b.seq)
                    now = a.time
            elif op == "cancel" and heap_handles:
                i = operand % len(heap_handles)
                heap_handles[i].cancel()
                calendar_handles[i].cancel()
            elif op == "peek":
                assert heap.peek_time() == calendar.peek_time()
            assert len(heap) == len(calendar)
            assert bool(heap) == bool(calendar)
        drained_heap = []
        while (e := heap.pop()) is not None:
            drained_heap.append((e.time, e.seq))
        drained_calendar = []
        while (e := calendar.pop()) is not None:
            drained_calendar.append((e.time, e.seq))
        assert drained_heap == drained_calendar
        assert drained_heap == sorted(drained_heap)
