"""Tests for the finite-uplink (NIC serialization) network model."""

from __future__ import annotations

import pytest

from repro.sim.delays import FixedDelay
from repro.sim.metrics import Metrics
from repro.sim.network import Network
from repro.sim.simulator import Simulation
from tests.sim.test_network import Recorder, SizedMessage


def make_net(n=4, delay=0.05, uplink_bps=8_000_000):
    sim = Simulation(seed=1)
    net = Network(sim, n, FixedDelay(delay), Metrics(n=n), uplink_bps=uplink_bps)
    parties = [Recorder(i, sim) for i in range(1, n + 1)]
    for p in parties:
        net.attach(p)
    return sim, net, parties


class TestUplinkSerialization:
    def test_transmission_time_added(self):
        # 1 MB at 8 Mb/s = 1 s of transmission + 0.05 s propagation.
        sim, net, parties = make_net()
        net.send(1, 2, SizedMessage(1_000_000))
        sim.run()
        assert parties[1].received[0][0] == pytest.approx(1.05)

    def test_broadcast_copies_queue_behind_each_other(self):
        """(n-1)·S serialization: the last receiver waits for all copies —
        the leader bottleneck as latency."""
        sim, net, parties = make_net()
        net.broadcast(1, SizedMessage(1_000_000))
        sim.run()
        times = sorted(p.received[0][0] for p in parties[1:])
        assert times == pytest.approx([1.05, 2.05, 3.05])

    def test_messages_queue_across_calls(self):
        sim, net, parties = make_net()
        net.send(1, 2, SizedMessage(1_000_000))
        net.send(1, 3, SizedMessage(1_000_000))
        sim.run()
        assert parties[1].received[0][0] == pytest.approx(1.05)
        assert parties[2].received[0][0] == pytest.approx(2.05)

    def test_distinct_senders_do_not_interfere(self):
        sim, net, parties = make_net()
        net.send(1, 3, SizedMessage(1_000_000))
        net.send(2, 4, SizedMessage(1_000_000))
        sim.run()
        assert parties[2].received[0][0] == pytest.approx(1.05)
        assert parties[3].received[0][0] == pytest.approx(1.05)

    def test_small_messages_negligible(self):
        sim, net, parties = make_net()
        net.send(1, 2, SizedMessage(100))  # 100 µs at 8 Mb/s
        sim.run()
        assert parties[1].received[0][0] == pytest.approx(0.0501)

    def test_self_delivery_skips_nic(self):
        sim, net, parties = make_net()
        net.broadcast(1, SizedMessage(1_000_000))
        sim.run()
        assert parties[0].received[0][0] == 0.0

    def test_infinite_bandwidth_default(self):
        sim, net, parties = make_net(uplink_bps=None)
        net.broadcast(1, SizedMessage(10_000_000))
        sim.run()
        assert all(p.received[0][0] == pytest.approx(0.05) for p in parties[1:])

    def test_queue_drains_over_idle_time(self):
        sim, net, parties = make_net()
        net.send(1, 2, SizedMessage(1_000_000))
        sim.run()
        # After the NIC is idle again, a new message pays only its own time.
        net.send(1, 3, SizedMessage(1_000_000))
        start = sim.now
        sim.run()
        assert parties[2].received[0][0] - start == pytest.approx(1.05)
