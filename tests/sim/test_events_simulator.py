"""Tests for the event queue and simulation kernel."""

from __future__ import annotations

import pytest

from repro.sim.events import EventQueue
from repro.sim.simulator import Simulation


class TestEventQueue:
    def test_ordering_by_time(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, lambda: fired.append("b"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.schedule(3.0, lambda: fired.append("c"))
        while (e := q.pop()) is not None:
            e.action()
        assert fired == ["a", "b", "c"]

    def test_fifo_tiebreak(self):
        """Events at the same instant fire in scheduling order (determinism)."""
        q = EventQueue()
        fired = []
        for i in range(10):
            q.schedule(1.0, lambda i=i: fired.append(i))
        while (e := q.pop()) is not None:
            e.action()
        assert fired == list(range(10))

    def test_cancellation(self):
        q = EventQueue()
        fired = []
        handle = q.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        assert handle.cancelled
        assert q.pop() is None
        assert fired == []

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(-1.0, lambda: None)

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        h = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        assert len(q) == 2
        h.cancel()
        assert len(q) == 1

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        h = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        h.cancel()
        assert q.peek_time() == 2.0


class TestSimulation:
    def test_clock_advances(self):
        sim = Simulation()
        times = []
        sim.schedule(1.0, lambda: times.append(sim.now))
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0, 2.5]
        assert sim.now == 2.5

    def test_run_until(self):
        sim = Simulation()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0  # clock advanced to the bound
        sim.run()
        assert fired == [1, 5]

    def test_nested_scheduling(self):
        sim = Simulation()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(1.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 2.0)]

    def test_schedule_in_past_rejected(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_max_events_guard(self):
        sim = Simulation()

        def loop():
            sim.schedule(0.1, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)

    def test_stop_when(self):
        sim = Simulation()
        fired = []
        for i in range(10):
            sim.schedule(float(i), lambda i=i: fired.append(i))
        sim.run(stop_when=lambda: len(fired) >= 3)
        assert fired == [0, 1, 2]

    def test_determinism_across_runs(self):
        def run_once(seed):
            sim = Simulation(seed=seed)
            values = []
            for i in range(5):
                sim.schedule(sim.rng.random(), lambda: values.append(sim.now))
            sim.run()
            return values

        assert run_once(7) == run_once(7)
        assert run_once(7) != run_once(8)

    def test_fork_rng_streams_independent(self):
        sim = Simulation(seed=1)
        a = sim.fork_rng("a")
        b = sim.fork_rng("b")
        assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]
