"""Tests for the network delay models."""

from __future__ import annotations

from random import Random

import pytest

from repro.sim.delays import (
    AdversarialDelay,
    FixedDelay,
    IntermittentSynchrony,
    MessageAwareDelay,
    PartialSynchrony,
    UniformDelay,
    WanDelay,
)


class TestFixedAndUniform:
    def test_fixed(self):
        d = FixedDelay(0.25)
        assert d.sample(1, 2, 0.0, Random(1)) == 0.25

    def test_uniform_bounds(self):
        d = UniformDelay(0.1, 0.2)
        rng = Random(1)
        for _ in range(100):
            s = d.sample(1, 2, 0.0, rng)
            assert 0.1 <= s <= 0.2


class TestWan:
    def test_symmetric_base_latency(self):
        d = WanDelay(jitter_sigma=0.0)
        rng = Random(3)
        ab = d.sample(1, 2, 0.0, rng)
        ba = d.sample(2, 1, 0.0, rng)
        assert ab == ba

    def test_base_latency_stable_per_pair(self):
        d = WanDelay(jitter_sigma=0.0)
        rng = Random(3)
        assert d.sample(1, 2, 0.0, rng) == d.sample(1, 2, 5.0, rng)

    def test_pairs_differ(self):
        d = WanDelay(jitter_sigma=0.0)
        rng = Random(3)
        samples = {d.sample(1, j, 0.0, rng) for j in range(2, 10)}
        assert len(samples) > 1

    def test_range_matches_paper(self):
        """One-way base delays live in [3 ms, 55 ms] (6-110 ms RTT)."""
        d = WanDelay(jitter_sigma=0.0)
        rng = Random(3)
        for j in range(2, 40):
            assert 0.003 <= d.sample(1, j, 0.0, rng) <= 0.055

    def test_self_delay_zero(self):
        d = WanDelay()
        assert d.sample(3, 3, 0.0, Random(1)) == 0.0


class TestPartialSynchrony:
    def test_after_gst_uses_base(self):
        d = PartialSynchrony(base=FixedDelay(0.1), gst=10.0, max_async=5.0)
        assert d.sample(1, 2, 10.0, Random(1)) == 0.1
        assert d.sample(1, 2, 50.0, Random(1)) == 0.1

    def test_before_gst_bounded_by_gst_plus_base(self):
        """Eventual delivery: even 'asynchronous' messages land soon after GST."""
        d = PartialSynchrony(base=FixedDelay(0.1), gst=10.0, max_async=100.0)
        rng = Random(1)
        for now in (0.0, 5.0, 9.9):
            s = d.sample(1, 2, now, rng)
            assert now + s <= 10.0 + 0.1 + 1e-9

    def test_adversarial_async_delay(self):
        d = PartialSynchrony(
            base=FixedDelay(0.1),
            gst=10.0,
            async_delay=lambda s, r, now: 3.0,
        )
        assert d.sample(1, 2, 0.0, Random(1)) == 3.0


class TestIntermittentSynchrony:
    def test_window_detection(self):
        d = IntermittentSynchrony(base=FixedDelay(0.1), period=10.0, sync_len=3.0)
        assert d.in_sync_window(0.5)
        assert d.in_sync_window(12.0)
        assert not d.in_sync_window(5.0)

    def test_inside_window_fast(self):
        d = IntermittentSynchrony(base=FixedDelay(0.1), period=10.0, sync_len=3.0)
        assert d.sample(1, 2, 0.5, Random(1)) == 0.1

    def test_outside_window_lands_in_next(self):
        d = IntermittentSynchrony(base=FixedDelay(0.1), period=10.0, sync_len=3.0)
        s = d.sample(1, 2, 5.0, Random(1))
        arrival = 5.0 + s
        assert d.in_sync_window(arrival)
        assert arrival >= 10.0

    def test_straddling_window_edge_deferred(self):
        d = IntermittentSynchrony(base=FixedDelay(0.5), period=10.0, sync_len=3.0)
        # Sent at 2.8, base arrival 3.3 is outside the window: defer.
        s = d.sample(1, 2, 2.8, Random(1))
        assert d.in_sync_window(2.8 + s)

    def test_validation(self):
        with pytest.raises(ValueError):
            IntermittentSynchrony(base=FixedDelay(0.1), period=1.0, sync_len=2.0)


class TestAdversarial:
    def test_strategy_applied(self):
        d = AdversarialDelay(strategy=lambda s, r, now: 7.0)
        assert d.sample(1, 2, 0.0, Random(1)) == 7.0

    def test_clamped_to_max(self):
        d = AdversarialDelay(strategy=lambda s, r, now: 1e9, max_delay=30.0)
        assert d.sample(1, 2, 0.0, Random(1)) == 30.0

    def test_negative_clamped_to_zero(self):
        d = AdversarialDelay(strategy=lambda s, r, now: -5.0)
        assert d.sample(1, 2, 0.0, Random(1)) == 0.0

    def test_message_aware(self):
        d = MessageAwareDelay(
            strategy=lambda s, r, now, m: 5.0 if m == "slow" else 0.1
        )
        assert d.sample_message(1, 2, 0.0, "slow", Random(1)) == 5.0
        assert d.sample_message(1, 2, 0.0, "fast", Random(1)) == 0.1
