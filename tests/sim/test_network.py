"""Tests for the broadcast network fabric and traffic accounting."""

from __future__ import annotations

import pytest

from repro.sim.delays import FixedDelay
from repro.sim.metrics import Metrics
from repro.sim.network import Network, message_kind, wire_size
from repro.sim.simulator import Simulation


class Recorder:
    """Minimal party: records (time, message) deliveries."""

    def __init__(self, index: int, sim: Simulation) -> None:
        self.index = index
        self.sim = sim
        self.received: list[tuple[float, object]] = []

    def on_receive(self, message: object) -> None:
        self.received.append((self.sim.now, message))


class SizedMessage:
    kind = "sized"

    def __init__(self, size: int) -> None:
        self._size = size

    def wire_size(self) -> int:
        return self._size


def make_net(n: int = 3, delay: float = 0.1):
    sim = Simulation(seed=1)
    net = Network(sim, n, FixedDelay(delay), Metrics(n=n))
    parties = [Recorder(i, sim) for i in range(1, n + 1)]
    for p in parties:
        net.attach(p)
    return sim, net, parties


class TestDelivery:
    def test_broadcast_reaches_everyone(self):
        sim, net, parties = make_net()
        net.broadcast(1, b"hello")
        sim.run()
        assert all(len(p.received) == 1 for p in parties)

    def test_self_delivery_immediate_others_delayed(self):
        sim, net, parties = make_net(delay=0.5)
        net.broadcast(1, b"hello")
        sim.run()
        assert parties[0].received[0][0] == 0.0
        assert parties[1].received[0][0] == 0.5

    def test_point_to_point(self):
        sim, net, parties = make_net()
        net.send(1, 3, b"direct")
        sim.run()
        assert len(parties[0].received) == 0
        assert len(parties[2].received) == 1

    def test_multicast(self):
        sim, net, parties = make_net()
        net.multicast(1, [2, 3], b"m")
        sim.run()
        assert len(parties[0].received) == 0
        assert len(parties[1].received) == 1
        assert len(parties[2].received) == 1

    def test_attach_validation(self):
        sim, net, parties = make_net()
        with pytest.raises(ValueError):
            net.attach(Recorder(1, sim))  # duplicate
        with pytest.raises(ValueError):
            net.attach(Recorder(99, sim))  # out of range


class TestCrash:
    def test_crashed_sender_sends_nothing(self):
        sim, net, parties = make_net()
        net.crash(1)
        net.broadcast(1, b"x")
        sim.run()
        assert all(not p.received for p in parties)

    def test_crashed_receiver_gets_nothing(self):
        sim, net, parties = make_net()
        net.crash(3)
        net.broadcast(1, b"x")
        sim.run()
        assert len(parties[2].received) == 0
        assert len(parties[1].received) == 1

    def test_crash_drops_in_flight(self):
        sim, net, parties = make_net(delay=1.0)
        net.broadcast(1, b"x")
        sim.schedule(0.5, lambda: net.crash(3))
        sim.run()
        assert len(parties[2].received) == 0

    def test_crash_is_idempotent(self):
        sim, net, parties = make_net()
        net.crash(3)
        net.crash(3)
        net.revive(3)
        net.broadcast(1, b"x")
        sim.run()
        assert len(parties[2].received) == 1

    def test_crash_rejects_out_of_range_index(self):
        sim, net, _ = make_net(n=3)
        with pytest.raises(ValueError, match="outside 1..3"):
            net.crash(0)
        with pytest.raises(ValueError, match="outside 1..3"):
            net.crash(4)

    def test_revive_of_never_crashed_party_rejected(self):
        # Silently accepting this used to emit a phantom net.revive event
        # for a node that never went down — a mis-specified fault schedule
        # must be loud.
        sim, net, _ = make_net()
        with pytest.raises(ValueError, match="not crashed"):
            net.revive(2)

    def test_revive_rejects_out_of_range_index(self):
        sim, net, _ = make_net(n=3)
        with pytest.raises(ValueError, match="outside 1..3"):
            net.revive(7)

    def test_revive_after_crash_restores_delivery(self):
        sim, net, parties = make_net()
        net.crash(3)
        net.revive(3)
        with pytest.raises(ValueError, match="not crashed"):
            net.revive(3)  # a second revive is the same mis-specification
        net.broadcast(1, b"x")
        sim.run()
        assert len(parties[2].received) == 1


class TestPartition:
    def test_messages_held_until_heal(self):
        sim, net, parties = make_net(delay=0.1)
        net.add_partition({1}, heal_time=5.0)
        net.broadcast(1, b"x")
        sim.run(until=4.0)
        assert len(parties[1].received) == 0
        sim.run()
        # Eventual delivery after heal.
        assert len(parties[1].received) == 1
        assert parties[1].received[0][0] >= 5.0

    def test_intra_partition_unaffected(self):
        sim, net, parties = make_net(delay=0.1)
        net.add_partition({1, 2}, heal_time=5.0)
        net.send(1, 2, b"x")
        sim.run(until=1.0)
        assert len(parties[1].received) == 1

    def test_expired_partition_noop(self):
        sim, net, parties = make_net(delay=0.1)
        net.add_partition({1}, heal_time=0.0)
        net.broadcast(1, b"x")
        sim.run()
        assert parties[1].received[0][0] == pytest.approx(0.1)
        assert net.active_partitions() == []

    def test_partition_rejects_out_of_range_index(self):
        sim, net, _ = make_net(n=3)
        with pytest.raises(ValueError, match="outside 1..3"):
            net.add_partition({1, 9}, heal_time=5.0)

    def test_overlapping_partitions_hold_until_last_heal(self):
        # Two partitions both separate 1 from 3 with different heal
        # times: the message must wait for the *last* separating cut.
        sim, net, parties = make_net(delay=0.1)
        net.add_partition({1}, heal_time=2.0)
        net.add_partition({1, 2}, heal_time=5.0)
        net.send(1, 3, b"x")
        sim.run(until=4.0)
        assert parties[2].received == []
        sim.run()
        assert parties[2].received[0][0] >= 5.0

    def test_partitioning_a_crashed_party_crash_wins(self):
        # While crashed, messages to the party are dropped (not held);
        # after revive the partition applies like anyone else.
        sim, net, parties = make_net(delay=0.1)
        net.crash(3)
        net.add_partition({3}, heal_time=5.0)
        net.broadcast(1, b"lost")          # dropped: 3 is down
        sim.schedule(1.0, lambda: net.revive(3))
        sim.schedule(2.0, lambda: net.broadcast(1, b"held"))
        sim.run()
        assert [m for _, m in parties[2].received] == [b"held"]
        assert parties[2].received[0][0] >= 5.0

    def test_healed_partitions_are_pruned(self):
        sim, net, _ = make_net()
        net.add_partition({1}, heal_time=1.0)
        net.add_partition({2}, heal_time=2.0)
        sim.schedule(3.0, lambda: None)  # advance the clock past both heals
        sim.run()
        net.add_partition({3}, heal_time=9.0)  # prunes the healed ones
        assert net.active_partitions() == [(frozenset({3}), 9.0)]
        assert net._partitions == [(frozenset({3}), 9.0)]


class TestFaultInterceptor:
    class Tap:
        def __init__(self, plan=None):
            self.plan = plan
            self.seen = []

        def intercept(self, sender, receiver, message, delay):
            self.seen.append((sender, receiver, message, delay))
            return self.plan

    def test_none_keeps_delivery_unchanged(self):
        sim, net, parties = make_net(delay=0.1)
        tap = self.Tap(plan=None)
        net.install_faults(tap)
        net.send(1, 3, b"x")
        sim.run()
        assert parties[2].received == [(0.1, b"x")]
        assert tap.seen == [(1, 3, b"x", 0.1)]

    def test_self_delivery_never_intercepted(self):
        sim, net, parties = make_net()
        tap = self.Tap(plan=[])  # would drop everything remote
        net.install_faults(tap)
        net.broadcast(1, b"x")
        sim.run()
        assert parties[0].received == [(0.0, b"x")]
        assert all(s != r for s, r, _, _ in tap.seen)

    def test_empty_plan_drops(self):
        sim, net, parties = make_net()
        net.install_faults(self.Tap(plan=[]))
        net.send(1, 3, b"x")
        sim.run()
        assert parties[2].received == []

    def test_plan_replaces_delivery(self):
        sim, net, parties = make_net(delay=0.1)
        net.install_faults(self.Tap(plan=[(0.5, b"a"), (0.7, b"a")]))
        net.send(1, 3, b"x")
        sim.run()
        assert parties[2].received == [(0.5, b"a"), (0.7, b"a")]

    def test_single_interceptor_slot(self):
        sim, net, _ = make_net()
        net.install_faults(self.Tap())
        with pytest.raises(ValueError, match="already installed"):
            net.install_faults(self.Tap())
        net.clear_faults()
        net.install_faults(self.Tap())  # free again after clearing


class TestAccounting:
    def test_broadcast_counts_n_messages(self):
        """Paper convention: one broadcast contributes n to message count."""
        sim, net, parties = make_net(n=3)
        net.broadcast(1, SizedMessage(100))
        assert net.metrics.msgs_sent[1] == 3
        assert net.metrics.bytes_sent[1] == 200  # (n-1) transmissions

    def test_send_counts_one(self):
        sim, net, parties = make_net(n=3)
        net.send(1, 2, SizedMessage(100))
        assert net.metrics.msgs_sent[1] == 1
        assert net.metrics.bytes_sent[1] == 100

    def test_kind_labels(self):
        sim, net, parties = make_net(n=3)
        net.broadcast(1, SizedMessage(10))
        assert net.metrics.msgs_by_kind["sized"] == 3

    def test_round_attribution(self):
        sim, net, parties = make_net(n=3)
        net.broadcast(1, SizedMessage(10), round=4)
        assert net.metrics.messages_in_round(4) == 3


class TestDuplication:
    def test_duplicates_delivered(self):
        sim, net, parties = make_net()
        net.duplicate_prob = 1.0
        net.send(1, 2, b"dup")
        sim.run()
        assert len(parties[1].received) == 2

    def test_no_duplicates_by_default(self):
        sim, net, parties = make_net()
        net.broadcast(1, b"x")
        sim.run()
        assert all(len(p.received) <= 1 for p in parties)

    def test_self_delivery_never_duplicated(self):
        sim, net, parties = make_net()
        net.duplicate_prob = 1.0
        net.broadcast(1, b"x")
        sim.run()
        assert len(parties[0].received) == 1

    def test_duplicate_trails_original(self):
        sim, net, parties = make_net(delay=0.1)
        net.duplicate_prob = 1.0
        net.send(1, 2, b"x")
        sim.run()
        first, second = (t for t, _ in parties[1].received)
        assert second > first


class TestWireSizeHelpers:
    def test_bytes_fallback(self):
        assert wire_size(b"abcd") == 4

    def test_method_preferred(self):
        assert wire_size(SizedMessage(77)) == 77

    def test_unsizable_rejected(self):
        with pytest.raises(TypeError):
            wire_size(42)

    def test_kind_fallback_to_classname(self):
        class Anon:
            def wire_size(self):
                return 1

        assert message_kind(Anon()) == "Anon"
        assert message_kind(SizedMessage(1)) == "sized"
