"""Tests for the broadcast network fabric and traffic accounting."""

from __future__ import annotations

import pytest

from repro.sim.delays import FixedDelay
from repro.sim.metrics import Metrics
from repro.sim.network import Network, message_kind, wire_size
from repro.sim.simulator import Simulation


class Recorder:
    """Minimal party: records (time, message) deliveries."""

    def __init__(self, index: int, sim: Simulation) -> None:
        self.index = index
        self.sim = sim
        self.received: list[tuple[float, object]] = []

    def on_receive(self, message: object) -> None:
        self.received.append((self.sim.now, message))


class SizedMessage:
    kind = "sized"

    def __init__(self, size: int) -> None:
        self._size = size

    def wire_size(self) -> int:
        return self._size


def make_net(n: int = 3, delay: float = 0.1):
    sim = Simulation(seed=1)
    net = Network(sim, n, FixedDelay(delay), Metrics(n=n))
    parties = [Recorder(i, sim) for i in range(1, n + 1)]
    for p in parties:
        net.attach(p)
    return sim, net, parties


class TestDelivery:
    def test_broadcast_reaches_everyone(self):
        sim, net, parties = make_net()
        net.broadcast(1, b"hello")
        sim.run()
        assert all(len(p.received) == 1 for p in parties)

    def test_self_delivery_immediate_others_delayed(self):
        sim, net, parties = make_net(delay=0.5)
        net.broadcast(1, b"hello")
        sim.run()
        assert parties[0].received[0][0] == 0.0
        assert parties[1].received[0][0] == 0.5

    def test_point_to_point(self):
        sim, net, parties = make_net()
        net.send(1, 3, b"direct")
        sim.run()
        assert len(parties[0].received) == 0
        assert len(parties[2].received) == 1

    def test_multicast(self):
        sim, net, parties = make_net()
        net.multicast(1, [2, 3], b"m")
        sim.run()
        assert len(parties[0].received) == 0
        assert len(parties[1].received) == 1
        assert len(parties[2].received) == 1

    def test_attach_validation(self):
        sim, net, parties = make_net()
        with pytest.raises(ValueError):
            net.attach(Recorder(1, sim))  # duplicate
        with pytest.raises(ValueError):
            net.attach(Recorder(99, sim))  # out of range


class TestCrash:
    def test_crashed_sender_sends_nothing(self):
        sim, net, parties = make_net()
        net.crash(1)
        net.broadcast(1, b"x")
        sim.run()
        assert all(not p.received for p in parties)

    def test_crashed_receiver_gets_nothing(self):
        sim, net, parties = make_net()
        net.crash(3)
        net.broadcast(1, b"x")
        sim.run()
        assert len(parties[2].received) == 0
        assert len(parties[1].received) == 1

    def test_crash_drops_in_flight(self):
        sim, net, parties = make_net(delay=1.0)
        net.broadcast(1, b"x")
        sim.schedule(0.5, lambda: net.crash(3))
        sim.run()
        assert len(parties[2].received) == 0


class TestPartition:
    def test_messages_held_until_heal(self):
        sim, net, parties = make_net(delay=0.1)
        net.add_partition({1}, heal_time=5.0)
        net.broadcast(1, b"x")
        sim.run(until=4.0)
        assert len(parties[1].received) == 0
        sim.run()
        # Eventual delivery after heal.
        assert len(parties[1].received) == 1
        assert parties[1].received[0][0] >= 5.0

    def test_intra_partition_unaffected(self):
        sim, net, parties = make_net(delay=0.1)
        net.add_partition({1, 2}, heal_time=5.0)
        net.send(1, 2, b"x")
        sim.run(until=1.0)
        assert len(parties[1].received) == 1

    def test_expired_partition_noop(self):
        sim, net, parties = make_net(delay=0.1)
        net.add_partition({1}, heal_time=0.0)
        net.broadcast(1, b"x")
        sim.run()
        assert parties[1].received[0][0] == pytest.approx(0.1)


class TestAccounting:
    def test_broadcast_counts_n_messages(self):
        """Paper convention: one broadcast contributes n to message count."""
        sim, net, parties = make_net(n=3)
        net.broadcast(1, SizedMessage(100))
        assert net.metrics.msgs_sent[1] == 3
        assert net.metrics.bytes_sent[1] == 200  # (n-1) transmissions

    def test_send_counts_one(self):
        sim, net, parties = make_net(n=3)
        net.send(1, 2, SizedMessage(100))
        assert net.metrics.msgs_sent[1] == 1
        assert net.metrics.bytes_sent[1] == 100

    def test_kind_labels(self):
        sim, net, parties = make_net(n=3)
        net.broadcast(1, SizedMessage(10))
        assert net.metrics.msgs_by_kind["sized"] == 3

    def test_round_attribution(self):
        sim, net, parties = make_net(n=3)
        net.broadcast(1, SizedMessage(10), round=4)
        assert net.metrics.messages_in_round(4) == 3


class TestDuplication:
    def test_duplicates_delivered(self):
        sim, net, parties = make_net()
        net.duplicate_prob = 1.0
        net.send(1, 2, b"dup")
        sim.run()
        assert len(parties[1].received) == 2

    def test_no_duplicates_by_default(self):
        sim, net, parties = make_net()
        net.broadcast(1, b"x")
        sim.run()
        assert all(len(p.received) <= 1 for p in parties)

    def test_self_delivery_never_duplicated(self):
        sim, net, parties = make_net()
        net.duplicate_prob = 1.0
        net.broadcast(1, b"x")
        sim.run()
        assert len(parties[0].received) == 1

    def test_duplicate_trails_original(self):
        sim, net, parties = make_net(delay=0.1)
        net.duplicate_prob = 1.0
        net.send(1, 2, b"x")
        sim.run()
        first, second = (t for t, _ in parties[1].received)
        assert second > first


class TestWireSizeHelpers:
    def test_bytes_fallback(self):
        assert wire_size(b"abcd") == 4

    def test_method_preferred(self):
        assert wire_size(SizedMessage(77)) == 77

    def test_unsizable_rejected(self):
        with pytest.raises(TypeError):
            wire_size(42)

    def test_kind_fallback_to_classname(self):
        class Anon:
            def wire_size(self):
                return 1

        assert message_kind(Anon()) == "Anon"
        assert message_kind(SizedMessage(1)) == "sized"
