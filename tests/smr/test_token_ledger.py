"""Tests for the token-ledger state machine, standalone and replicated."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ClusterConfig, build_cluster
from repro.sim.delays import UniformDelay
from repro.smr import (
    ClientFrontend,
    TokenLedgerMachine,
    attach_replicas,
    check_replica_agreement,
)


class TestLedgerSemantics:
    def test_mint_and_transfer(self):
        m = TokenLedgerMachine()
        m.apply(TokenLedgerMachine.mint(b"alice", 100))
        m.apply(TokenLedgerMachine.transfer(b"alice", b"bob", 40))
        assert m.balance(b"alice") == 60
        assert m.balance(b"bob") == 40
        assert m.total_supply == 100

    def test_overdraft_rejected(self):
        m = TokenLedgerMachine()
        m.apply(TokenLedgerMachine.mint(b"alice", 10))
        m.apply(TokenLedgerMachine.transfer(b"alice", b"bob", 11))
        assert m.balance(b"alice") == 10
        assert m.rejected == 1

    def test_zero_and_negative_amounts_rejected(self):
        m = TokenLedgerMachine()
        m.apply(TokenLedgerMachine.mint(b"a", 5))
        m.apply(b"xfer\x1fa\x1fb\x1f0")
        m.apply(b"xfer\x1fa\x1fb\x1f-3")
        m.apply(b"mint\x1fa\x1f-1")
        assert m.rejected == 3
        assert m.balance(b"a") == 5

    def test_garbage_rejected(self):
        m = TokenLedgerMachine()
        m.apply(b"what")
        m.apply(b"mint\x1fonly-two")
        m.apply(b"xfer\x1fa\x1fb\x1fNaN")
        assert m.rejected == 3

    def test_emptied_account_removed(self):
        m = TokenLedgerMachine()
        m.apply(TokenLedgerMachine.mint(b"a", 7))
        m.apply(TokenLedgerMachine.transfer(b"a", b"b", 7))
        assert b"a" not in m.balances

    def test_digest_covers_rejections(self):
        a, b = TokenLedgerMachine(), TokenLedgerMachine()
        a.apply(TokenLedgerMachine.mint(b"x", 5))
        b.apply(TokenLedgerMachine.mint(b"x", 5))
        a.apply(b"garbage")
        assert a.digest() != b.digest()

    @given(
        st.lists(
            st.tuples(
                st.sampled_from([b"a", b"b", b"c"]),
                st.sampled_from([b"a", b"b", b"c"]),
                st.integers(min_value=-5, max_value=50),
                st.booleans(),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_supply_conservation_property(self, ops):
        """Total supply only changes on successful mints, never transfers."""
        m = TokenLedgerMachine()
        minted = 0
        for source, destination, amount, is_mint in ops:
            if is_mint:
                m.apply(TokenLedgerMachine.mint(destination, amount))
                if amount > 0:
                    minted += amount
            else:
                m.apply(TokenLedgerMachine.transfer(source, destination, amount))
        assert m.total_supply == minted
        assert sum(m.balances.values()) == minted
        assert all(v > 0 for v in m.balances.values())


class TestReplicatedLedger:
    def test_replicas_agree_including_rejections(self):
        """Replicas agree on the fate of every transfer — including the
        overdrafts that must fail on everyone."""
        client = ClientFrontend()
        config = ClusterConfig(
            n=4, t=1, delta_bound=0.4, epsilon=0.005,
            delay_model=UniformDelay(0.01, 0.09), seed=9,
            max_rounds=120, payload_source=client.payload_source,
        )
        cluster = build_cluster(config)
        replicas = attach_replicas(
            cluster, machine_factory=TokenLedgerMachine, checkpoint_interval=10
        )
        client.bind(cluster)
        cluster.start()
        client.submit_at(0.01, TokenLedgerMachine.mint(b"alice", 100))
        for i in range(30):
            # Every third transfer is an overdraft attempt.
            amount = 500 if i % 3 == 2 else 3
            client.submit_at(
                0.1 * i + 0.1,
                TokenLedgerMachine.transfer(b"alice", b"bob-%d" % (i % 4), amount),
            )
        cluster.run_for(20.0)
        cluster.check_safety()
        check_replica_agreement(replicas)
        machine = replicas[0].machine
        assert machine.rejected == 10
        assert machine.applied == 21
        assert machine.total_supply == 100
        digests = {r.digest() for r in replicas}
        assert len(digests) == 1
