"""Tests for multi-subnet sharding (versioned certified streams +
ShardedDeployment)."""

from __future__ import annotations

import pytest

from repro.obs import Meter, Tracer
from repro.smr.sharding import ShardResult, ShardSpec, ShardedDeployment
from repro.smr.xnet import (
    XNET_STREAM_VERSION,
    EnvelopeError,
    StreamCertifier,
    StreamMessage,
    is_stream,
    strip_stream_envelope,
)


class TestStreamWire:
    def test_roundtrip(self):
        certifier = StreamCertifier(b"secret")
        message = StreamMessage(
            version=XNET_STREAM_VERSION,
            source="alpha",
            destination="beta",
            seq=7,
            cert=certifier.certify("alpha", "beta", 7, b"payload"),
            body=b"payload",
        )
        parsed = StreamMessage.from_wire(message.wire())
        assert parsed == message
        assert is_stream(message.wire())
        assert strip_stream_envelope(message.wire()) == b"payload"
        assert certifier.verify(parsed)

    def test_malformed_wire_raises(self):
        with pytest.raises(EnvelopeError):
            StreamMessage.from_wire(b"not a stream")
        with pytest.raises(EnvelopeError):
            StreamMessage.from_wire(b"xstr\x1f\x01alpha-no-separators")

    def test_cert_binds_all_fields(self):
        certifier = StreamCertifier(b"secret")
        cert = certifier.certify("alpha", "beta", 7, b"payload")
        good = StreamMessage(XNET_STREAM_VERSION, "alpha", "beta", 7, cert, b"payload")
        assert certifier.verify(good)
        for tampered in (
            StreamMessage(XNET_STREAM_VERSION, "gamma", "beta", 7, cert, b"payload"),
            StreamMessage(XNET_STREAM_VERSION, "alpha", "gamma", 7, cert, b"payload"),
            StreamMessage(XNET_STREAM_VERSION, "alpha", "beta", 8, cert, b"payload"),
            StreamMessage(XNET_STREAM_VERSION, "alpha", "beta", 7, cert, b"other"),
        ):
            assert not certifier.verify(tampered)
        other = StreamCertifier(b"other-secret")
        assert not other.verify(good)


class TestStreamCertificationAtIngress:
    """Forged / replayed / stale cross-shard envelopes are dropped and
    counted, never delivered to the destination shard."""

    def _deployment(self):
        sim_tracer, sim_meter = Tracer(), Meter()
        dep = ShardedDeployment(
            ShardSpec(shards=2, n=4, seed=3), tracer=sim_tracer, meter=sim_meter
        )
        return dep

    def test_forged_cert_rejected(self):
        dep = self._deployment()
        forged = StreamMessage(
            version=XNET_STREAM_VERSION,
            source="shard0",
            destination="shard1",
            seq=0,
            cert=b"\x00" * 32,
            body=b"forged command",
        )
        assert dep.xnet.ingress(forged) is False
        assert dep.xnet.rejected == 1
        assert not dep.xnet.subnets["shard1"].received
        rejects = dep.sim.tracer.events("shard.xnet.reject")
        assert len(rejects) == 1
        assert rejects[0].payload["reason"] == "cert"
        assert dep.sim.meter.counter_value("shard.xnet.rejected") == 1

    def test_wrong_version_rejected(self):
        dep = self._deployment()
        message = StreamMessage(
            version=XNET_STREAM_VERSION + 1,
            source="shard0",
            destination="shard1",
            seq=0,
            cert=dep.xnet.certifier.certify("shard0", "shard1", 0, b"x"),
            body=b"x",
        )
        assert dep.xnet.ingress(message) is False
        assert dep.xnet.rejected == 1
        reasons = [e.payload["reason"] for e in dep.sim.tracer.events("shard.xnet.reject")]
        assert reasons == ["version"]

    def test_replay_rejected(self):
        dep = self._deployment()
        certifier = dep.xnet.certifier
        message = StreamMessage(
            version=XNET_STREAM_VERSION,
            source="shard0",
            destination="shard1",
            seq=0,
            cert=certifier.certify("shard0", "shard1", 0, b"once"),
            body=b"once",
        )
        assert dep.xnet.ingress(message) is True
        # Replaying the same certified message (seq already consumed).
        assert dep.xnet.ingress(message) is False
        assert dep.xnet.rejected == 1
        reasons = [e.payload["reason"] for e in dep.sim.tracer.events("shard.xnet.reject")]
        assert reasons == ["seq"]

    def test_unknown_destination_counted(self):
        dep = self._deployment()
        message = StreamMessage(
            version=XNET_STREAM_VERSION,
            source="shard0",
            destination="nowhere",
            seq=0,
            cert=dep.xnet.certifier.certify("shard0", "nowhere", 0, b"x"),
            body=b"x",
        )
        assert dep.xnet.ingress(message) is False
        assert dep.xnet.undeliverable == 1
        assert dep.xnet.rejected == 0


class TestShardedDeployment:
    def test_cross_shard_end_to_end(self):
        spec = ShardSpec(shards=2, n=4, duration=2.0, xfrac=0.25, seed=0)
        dep = ShardedDeployment(spec)
        result = dep.run()
        assert isinstance(result, ShardResult)
        # Every generated request finalized somewhere; every cross-shard
        # request crossed the fabric and finalized at its destination.
        assert result.committed_cross == dep.population.cross_generated > 0
        assert result.transfers == result.committed_cross
        assert result.rejected == 0
        assert result.undeliverable == 0
        assert result.committed == sum(dep.population.generated.values())
        # Cross-shard latency covers two consensus hops plus the transfer.
        assert result.latency_penalty is not None
        assert result.latency_penalty > 1.0

    def test_deterministic_across_runs(self):
        spec = ShardSpec(shards=2, n=4, duration=1.0, xfrac=0.2, seed=4)
        a = ShardedDeployment(spec).run()
        b = ShardedDeployment(spec).run()
        assert a == b

    def test_aggregate_throughput_scales(self):
        results = {
            k: ShardedDeployment(
                ShardSpec(shards=k, n=4, duration=1.0, seed=0)
            ).run()
            for k in (1, 2)
        }
        assert results[2].goodput == pytest.approx(2 * results[1].goodput)

    def test_local_only_deployment_has_no_transfers(self):
        result = ShardedDeployment(
            ShardSpec(shards=2, n=4, duration=1.0, xfrac=0.0, seed=0)
        ).run()
        assert result.transfers == 0
        assert result.committed_cross == 0
        assert result.committed > 0

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            ShardSpec(shards=0)
