"""Tests for the client frontend (submit → commit → latency)."""

from __future__ import annotations

import pytest

from repro.core import ClusterConfig, build_cluster
from repro.sim.delays import FixedDelay
from repro.smr import ClientFrontend


def make_cluster(client, n=4, t=1, rounds=60, seed=3, delta=0.05):
    config = ClusterConfig(
        n=n,
        t=t,
        delta_bound=0.3,
        epsilon=0.005,
        delay_model=FixedDelay(delta),
        max_rounds=rounds,
        seed=seed,
        payload_source=client.payload_source,
    )
    cluster = build_cluster(config)
    client.bind(cluster)
    return cluster


class TestSubmission:
    def test_single_command_commits(self):
        client = ClientFrontend()
        cluster = make_cluster(client)
        cluster.start()
        handle = client.submit(b"put k v")
        cluster.run_for(5.0)
        assert handle.done
        assert handle.committed_round is not None
        assert b"put k v" in b"".join(cluster.party(1).output_commands())

    def test_unbound_submit_raises(self):
        client = ClientFrontend()
        with pytest.raises(RuntimeError):
            client.submit(b"x")

    def test_scheduled_submission(self):
        client = ClientFrontend()
        cluster = make_cluster(client)
        cluster.start()
        client.submit_at(2.0, b"later")
        cluster.run_for(1.0)
        assert not client.handles  # nothing submitted yet
        cluster.run_for(5.0)
        assert len(client.completed) == 1

    def test_stream_all_complete(self):
        client = ClientFrontend()
        cluster = make_cluster(client)
        cluster.start()
        client.submit_stream(rate=20.0, duration=3.0)
        cluster.run_for(10.0)
        assert len(client.handles) == pytest.approx(60, abs=2)
        assert not client.outstanding

    def test_commands_committed_exactly_once(self):
        client = ClientFrontend()
        cluster = make_cluster(client)
        cluster.start()
        client.submit_stream(rate=30.0, duration=2.0)
        cluster.run_for(10.0)
        commands = cluster.party(1).output_commands()
        assert len(commands) == len(set(commands))
        assert len(commands) == len(client.completed)


class TestLatency:
    def test_latency_bounds(self):
        """End-to-end latency = queueing (≤ one round ≈ 2δ) + commit (3δ)."""
        delta = 0.05
        client = ClientFrontend()
        cluster = make_cluster(client, delta=delta)
        cluster.start()
        client.submit_stream(rate=10.0, duration=3.0)
        cluster.run_for(12.0)
        latencies = client.latencies()
        assert latencies
        for latency in latencies:
            assert 3 * delta - 1e-9 <= latency <= 6 * delta + 1e-9
        assert client.mean_latency() < 5 * delta

    def test_no_latency_before_completion(self):
        client = ClientFrontend()
        cluster = make_cluster(client)
        handle = None

        def submit_late():
            nonlocal handle
            handle = client.submit(b"x")

        cluster.sim.schedule_at(0.1, submit_late)
        cluster.start()
        cluster.run_for(0.15)
        assert handle is not None and handle.latency is None


class TestUnderFaults:
    def test_client_progress_with_crashes(self):
        client = ClientFrontend()
        config_cluster = None
        from repro.core import ClusterConfig, build_cluster

        config = ClusterConfig(
            n=7, t=2, delta_bound=0.3, epsilon=0.005,
            delay_model=FixedDelay(0.05), max_rounds=80, seed=4,
            payload_source=client.payload_source,
            corrupt={1: None, 2: None},
        )
        cluster = build_cluster(config)
        client.bind(cluster, observer=3)
        cluster.start()
        client.submit_stream(rate=20.0, duration=3.0)
        cluster.run_for(15.0)
        assert not client.outstanding
