"""Tests for cross-subnet messaging (intercommunicating state machines)."""

from __future__ import annotations

import pytest

from repro.core import ClusterConfig, build_cluster
from repro.sim.delays import FixedDelay
from repro.sim.simulator import Simulation
from repro.smr import ClientFrontend
from repro.smr.xnet import EnvelopeError, XNet, is_envelope, make_envelope, parse_envelope


def two_subnets(seed=1, rounds=400):
    sim = Simulation(seed=seed)
    subnets = {}
    xnet = XNet(sim, transfer_delay=0.2)
    for offset, name in enumerate(("alpha", "beta")):
        client = ClientFrontend()
        config = ClusterConfig(
            n=4, t=1, delta_bound=0.3, epsilon=0.005,
            delay_model=FixedDelay(0.05), seed=seed + offset,
            max_rounds=rounds, payload_source=client.payload_source,
        )
        cluster = build_cluster(config, sim=sim)
        client.bind(cluster)
        subnets[name] = (cluster, client)
    for name, (cluster, client) in subnets.items():
        xnet.register(name, cluster, client)
    for cluster, _ in subnets.values():
        cluster.start()
    return sim, xnet, subnets


class TestEnvelope:
    def test_roundtrip(self):
        env = make_envelope("beta", b"hello")
        assert parse_envelope(env) == ("beta", b"hello")

    def test_non_envelope(self):
        assert not is_envelope(b"ordinary command")
        with pytest.raises(EnvelopeError):
            parse_envelope(b"ordinary command")

    def test_bad_destination(self):
        with pytest.raises(ValueError):
            make_envelope("a\x1fb", b"x")

    def test_malformed_envelope(self):
        assert is_envelope(b"xnet\x1fno-separator")  # tagged, but broken
        with pytest.raises(EnvelopeError):
            parse_envelope(b"xnet\x1fno-separator")


class TestRouting:
    def test_command_crosses_subnets(self):
        sim, xnet, subnets = two_subnets()
        alpha_cluster, alpha_client = subnets["alpha"]
        beta_cluster, beta_client = subnets["beta"]
        alpha_client.submit(make_envelope("beta", b"transfer 10 tokens"))
        sim.run(until=10.0)
        # The envelope committed on alpha, crossed, and committed on beta.
        assert xnet.transfers == 1
        assert ("alpha", b"transfer 10 tokens") in xnet.subnets["beta"].received
        committed_on_beta = b"".join(beta_cluster.party(1).output_commands())
        assert b"transfer 10 tokens" in committed_on_beta

    def test_fifo_per_source(self):
        sim, xnet, subnets = two_subnets()
        _, alpha_client = subnets["alpha"]
        for i in range(10):
            alpha_client.submit_at(0.1 * i + 0.01, make_envelope("beta", b"m%02d" % i))
        sim.run(until=20.0)
        received = [body for src, body in xnet.subnets["beta"].received if src == "alpha"]
        assert received == [b"m%02d" % i for i in range(10)]

    def test_bidirectional(self):
        sim, xnet, subnets = two_subnets()
        _, alpha_client = subnets["alpha"]
        _, beta_client = subnets["beta"]
        alpha_client.submit(make_envelope("beta", b"ping"))
        beta_client.submit(make_envelope("alpha", b"pong"))
        sim.run(until=10.0)
        assert ("alpha", b"ping") in xnet.subnets["beta"].received
        assert ("beta", b"pong") in xnet.subnets["alpha"].received

    def test_unknown_destination_counted(self):
        sim, xnet, subnets = two_subnets()
        _, alpha_client = subnets["alpha"]
        alpha_client.submit(make_envelope("gamma", b"lost"))
        sim.run(until=10.0)
        assert xnet.undeliverable == 1
        assert xnet.transfers == 0

    def test_subnets_progress_independently(self):
        sim, xnet, subnets = two_subnets()
        sim.run(until=10.0)
        alpha_cluster, _ = subnets["alpha"]
        beta_cluster, _ = subnets["beta"]
        assert alpha_cluster.min_committed_round() > 20
        assert beta_cluster.min_committed_round() > 20
        alpha_cluster.check_safety()
        beta_cluster.check_safety()

    def test_duplicate_registration_rejected(self):
        sim, xnet, subnets = two_subnets()
        cluster, client = subnets["alpha"]
        with pytest.raises(ValueError):
            xnet.register("alpha", cluster, client)

    def test_foreign_simulation_rejected(self):
        sim, xnet, subnets = two_subnets()
        client = ClientFrontend()
        config = ClusterConfig(
            n=4, t=1, delay_model=FixedDelay(0.05),
            payload_source=client.payload_source,
        )
        foreign = build_cluster(config)  # its own Simulation
        client.bind(foreign)
        with pytest.raises(ValueError):
            xnet.register("gamma", foreign, client)
