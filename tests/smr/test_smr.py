"""Tests for the replicated state machine layer."""

from __future__ import annotations

import pytest

from repro.core import ClusterConfig, Payload, build_cluster
from repro.sim.delays import FixedDelay, UniformDelay
from repro.smr import (
    CounterStateMachine,
    KVStateMachine,
    Replica,
    attach_replicas,
    check_replica_agreement,
)


class TestKVMachine:
    def test_put_get(self):
        m = KVStateMachine()
        m.apply(KVStateMachine.put(b"k", b"v"))
        assert m.get(b"k") == b"v"

    def test_overwrite(self):
        m = KVStateMachine()
        m.apply(KVStateMachine.put(b"k", b"v1"))
        m.apply(KVStateMachine.put(b"k", b"v2"))
        assert m.get(b"k") == b"v2"

    def test_delete(self):
        m = KVStateMachine()
        m.apply(KVStateMachine.put(b"k", b"v"))
        m.apply(KVStateMachine.delete(b"k"))
        assert m.get(b"k") is None

    def test_delete_missing_is_deterministic_noop(self):
        m = KVStateMachine()
        m.apply(KVStateMachine.delete(b"nope"))
        assert m.applied == 1

    def test_garbage_rejected_deterministically(self):
        a, b = KVStateMachine(), KVStateMachine()
        for m in (a, b):
            m.apply(b"\xff\xfegarbage")
            m.apply(b"put")  # malformed: missing fields
        assert a.digest() == b.digest()
        assert a.rejected == 2

    def test_digest_tracks_state(self):
        a, b = KVStateMachine(), KVStateMachine()
        a.apply(KVStateMachine.put(b"k", b"v"))
        assert a.digest() != b.digest()
        b.apply(KVStateMachine.put(b"k", b"v"))
        assert a.digest() == b.digest()

    def test_digest_insertion_order_independent(self):
        a, b = KVStateMachine(), KVStateMachine()
        a.apply(KVStateMachine.put(b"x", b"1"))
        a.apply(KVStateMachine.put(b"y", b"2"))
        b.apply(KVStateMachine.put(b"y", b"2"))
        b.apply(KVStateMachine.put(b"x", b"1"))
        # Same final state but different applied-counter history is still
        # distinguishable; equalize histories first.
        assert sorted(a.state) == sorted(b.state)

    def test_counter_machine(self):
        m = CounterStateMachine()
        m.apply((5).to_bytes(8, "big"))
        m.apply((7).to_bytes(8, "big"))
        assert m.value == 12


def run_kv_cluster(n=4, t=1, rounds=20, seed=3, delay=None):
    counter = {"i": 0}

    def source(party, round, chain):
        counter["i"] += 1
        key = b"key-%d" % (counter["i"] % 5)
        return Payload(commands=(KVStateMachine.put(key, b"round-%d" % round),))

    config = ClusterConfig(
        n=n,
        t=t,
        delta_bound=0.3,
        epsilon=0.01,
        delay_model=delay or FixedDelay(0.05),
        max_rounds=rounds,
        seed=seed,
        payload_source=source,
    )
    cluster = build_cluster(config)
    replicas = attach_replicas(cluster, checkpoint_interval=5)
    cluster.start()
    cluster.run_until_all_committed_round(rounds - 2, timeout=600)
    cluster.check_safety()
    return cluster, replicas


class TestReplication:
    def test_replicas_reach_same_state(self):
        cluster, replicas = run_kv_cluster()
        digests = {r.digest() for r in replicas if r.commands_applied == replicas[0].commands_applied}
        assert len(digests) == 1

    def test_checkpoints_agree(self):
        cluster, replicas = run_kv_cluster()
        check_replica_agreement(replicas)
        assert any(r.checkpoints for r in replicas)

    def test_agreement_under_jitter(self):
        cluster, replicas = run_kv_cluster(
            n=7, t=2, seed=8, delay=UniformDelay(0.01, 0.2)
        )
        check_replica_agreement(replicas)

    def test_divergence_detected(self):
        """check_replica_agreement must actually catch forged divergence."""
        cluster, replicas = run_kv_cluster()
        # Forge a conflicting checkpoint.
        from repro.smr.replica import Checkpoint

        victim = replicas[0]
        if not victim.checkpoints:
            pytest.skip("no checkpoints produced")
        real = victim.checkpoints[0]
        replicas[1].checkpoints.append(
            Checkpoint(command_count=real.command_count, round=real.round, digest=b"bogus")
        )
        with pytest.raises(AssertionError):
            check_replica_agreement(replicas)

    def test_commands_applied_in_commit_order(self):
        cluster, replicas = run_kv_cluster()
        party_commands = cluster.party(1).output_commands()
        assert replicas[0].commands_applied == len(party_commands)
