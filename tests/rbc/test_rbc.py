"""Tests for the erasure-coded reliable broadcast subprotocol."""

from __future__ import annotations

import pytest

from repro.erasure.merkle import MerkleTree
from repro.erasure.reed_solomon import CodecParams, encode
from repro.rbc.protocol import Fragment, RbcEndpoint, RbcMessage
from repro.sim.delays import FixedDelay
from repro.sim.metrics import Metrics
from repro.sim.network import Network
from repro.sim.simulator import Simulation


class RbcHarness:
    """n RBC endpoints on a shared network, recording deliveries."""

    def __init__(self, n=7, t=2, delay=0.05, seed=0, fill_delay=0.1):
        self.n, self.t = n, t
        self.sim = Simulation(seed=seed)
        self.network = Network(self.sim, n, FixedDelay(delay), Metrics(n=n))
        self.delivered: dict[int, list[tuple[int, bytes]]] = {
            i: [] for i in range(1, n + 1)
        }
        self.endpoints = {}
        for i in range(1, n + 1):
            endpoint = RbcEndpoint(
                index=i,
                n=n,
                t=t,
                network=self.network,
                deliver=lambda dealer, root, data, i=i: self.delivered[i].append(
                    (dealer, data)
                ),
                fill_delay=fill_delay,
            )
            self.endpoints[i] = endpoint
            shim = type(
                "Shim",
                (),
                {
                    "index": i,
                    "on_receive": lambda self_, m, ep=endpoint: ep.on_message(m),
                },
            )()
            self.network.attach(shim)


class TestHappyPath:
    def test_all_parties_deliver(self):
        h = RbcHarness()
        data = b"the block bytes" * 100
        h.endpoints[1].disperse(data)
        h.sim.run()
        for i in range(1, h.n + 1):
            assert h.delivered[i] == [(1, data)]

    def test_dealer_delivers_immediately(self):
        h = RbcHarness()
        h.endpoints[2].disperse(b"payload")
        assert h.delivered[2] == [(2, b"payload")]

    def test_delivery_latency_is_two_delta(self):
        """Disperse (δ) + echo (δ): better latency than Cachin–Tessaro."""
        delta = 0.05
        h = RbcHarness(delay=delta)
        h.endpoints[1].disperse(b"x" * 1000)
        times = {}

        def run_and_capture():
            while h.sim.step():
                for i in range(2, h.n + 1):
                    if h.delivered[i] and i not in times:
                        times[i] = h.sim.now

        run_and_capture()
        assert all(t == pytest.approx(2 * delta) for t in times.values())

    def test_multiple_concurrent_instances(self):
        h = RbcHarness()
        h.endpoints[1].disperse(b"from one")
        h.endpoints[2].disperse(b"from two")
        h.sim.run()
        for i in range(1, h.n + 1):
            assert set(h.delivered[i]) == {(1, b"from one"), (2, b"from two")}

    def test_duplicate_disperse_is_idempotent(self):
        h = RbcHarness()
        h.endpoints[1].disperse(b"same")
        h.endpoints[1].disperse(b"same")
        h.sim.run()
        assert all(h.delivered[i].count((1, b"same")) == 1 for i in range(1, h.n + 1))

    def test_no_fill_traffic_in_good_case(self):
        h = RbcHarness(fill_delay=0.5)
        h.endpoints[1].disperse(b"y" * 5000)
        h.sim.run()
        assert h.network.metrics.msgs_by_kind["rbc-fill"] == 0

    def test_per_party_traffic_linear_in_s(self):
        """Each party sends O(S): non-dealers echo ≈ n·S/(t+1) ≈ 2.5·S,
        the dealer additionally pays the initial dispersal (≈ 2× that)."""
        h = RbcHarness(n=10, t=3)
        size = 90_000
        h.endpoints[1].disperse(b"z" * size)
        h.sim.run()
        expansion = h.n / (h.t + 1)
        assert h.network.metrics.bytes_sent[1] < 2 * (expansion + 0.5) * size
        for i in range(2, h.n + 1):
            assert h.network.metrics.bytes_sent[i] < (expansion + 0.5) * size


class TestTotality:
    def test_fill_recovers_lagging_party(self):
        """A party the dealer skipped still delivers (totality)."""
        h = RbcHarness()
        data = b"selective dealing" * 50

        # A corrupt dealer sends fragments to only t+1 honest parties.
        dealer = h.endpoints[1]
        params = CodecParams(k=h.t + 1, m=h.n)
        shards = encode(data, params)
        tree = MerkleTree(shards)
        for target in (2, 3, 4):  # only three of seven parties
            h.network.send(
                1,
                target,
                RbcMessage(
                    dealer=1,
                    root=tree.root,
                    data_length=len(data),
                    phase="send",
                    fragment=Fragment(
                        index=target - 1, data=shards[target - 1], proof=tree.proof(target - 1)
                    ),
                ),
            )
        h.sim.run()
        # Everyone except the (silent) dealer itself must deliver.
        for i in range(2, h.n + 1):
            assert h.delivered[i] == [(1, data)], f"party {i} failed totality"


class TestConsistency:
    def test_inconsistent_dealer_rejected(self):
        """Fragments committed under a root that does not match any real
        encoding must never be delivered (consistency check on re-encode)."""
        h = RbcHarness()
        params = CodecParams(k=h.t + 1, m=h.n)
        good = encode(b"A" * 300, params)
        evil = encode(b"B" * 300, params)
        # Mix shards from two different messages under one commitment.
        mixed = good[:4] + evil[4:]
        tree = MerkleTree(mixed)
        for target in range(2, h.n + 1):
            h.network.send(
                1,
                target,
                RbcMessage(
                    dealer=1,
                    root=tree.root,
                    data_length=300,
                    phase="send",
                    fragment=Fragment(
                        index=target - 1, data=mixed[target - 1], proof=tree.proof(target - 1)
                    ),
                ),
            )
        h.sim.run()
        for i in range(2, h.n + 1):
            assert h.delivered[i] == []

    def test_forged_fragment_ignored(self):
        h = RbcHarness()
        data = b"real data" * 30
        params = CodecParams(k=h.t + 1, m=h.n)
        shards = encode(data, params)
        tree = MerkleTree(shards)
        # A fragment whose bytes don't match its proof is dropped silently.
        h.endpoints[2].on_message(
            RbcMessage(
                dealer=1,
                root=tree.root,
                data_length=len(data),
                phase="send",
                fragment=Fragment(index=1, data=b"garbage!", proof=tree.proof(1)),
            )
        )
        assert h.delivered[2] == []

    def test_mismatched_proof_index_ignored(self):
        h = RbcHarness()
        data = b"real data" * 30
        params = CodecParams(k=h.t + 1, m=h.n)
        shards = encode(data, params)
        tree = MerkleTree(shards)
        h.endpoints[2].on_message(
            RbcMessage(
                dealer=1,
                root=tree.root,
                data_length=len(data),
                phase="send",
                fragment=Fragment(index=2, data=shards[1], proof=tree.proof(1)),
            )
        )
        assert h.delivered[2] == []

    def test_non_rbc_message_returns_false(self):
        h = RbcHarness()
        assert not h.endpoints[1].on_message("something else")
