"""Documentation hygiene: the link/markdown checker must pass."""

from __future__ import annotations

import importlib.util
import pathlib

CHECKER = pathlib.Path(__file__).resolve().parents[1] / "tools" / "check_docs.py"


def load_checker():
    spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocs:
    def test_checker_exists(self):
        assert CHECKER.is_file()

    def test_no_documentation_problems(self):
        module = load_checker()
        problems = module.run()
        assert problems == [], "\n".join(problems)

    def test_markdown_corpus_nonempty(self):
        module = load_checker()
        files = {p.name for p in module.doc_files()}
        assert {"README.md", "DESIGN.md", "EXPERIMENTS.md", "OBSERVABILITY.md"} <= files
