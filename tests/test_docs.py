"""Documentation hygiene: the link/markdown checker must pass."""

from __future__ import annotations

import importlib.util
import pathlib

CHECKER = pathlib.Path(__file__).resolve().parents[1] / "tools" / "check_docs.py"


def load_checker():
    spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocs:
    def test_checker_exists(self):
        assert CHECKER.is_file()

    def test_no_documentation_problems(self):
        module = load_checker()
        problems = module.run()
        assert problems == [], "\n".join(problems)

    def test_markdown_corpus_nonempty(self):
        module = load_checker()
        files = {p.name for p in module.doc_files()}
        assert {"README.md", "DESIGN.md", "EXPERIMENTS.md", "OBSERVABILITY.md"} <= files

    def test_live_transport_names_are_checked(self):
        """The checker must see the live.* registrations and hold
        TRANSPORT.md to them — a rename in the registries without a doc
        update has to fail check_live_docs."""
        module = load_checker()
        names = set(module.registered_metrics()) | set(module.registered_event_kinds())
        live = {n for n in names if n.startswith("live.")}
        assert {"live.connects", "live.peer.connect", "live.frame.rejected"} <= live

    def test_cli_scan_sees_live_subcommands(self):
        module = load_checker()
        assert {"serve", "live"} <= set(module.cli_subcommands())
