"""Tests for Schnorr-group parameter generation and operations."""

from __future__ import annotations

from random import Random

import pytest

from repro.crypto.field import is_probable_prime
from repro.crypto.group import default_group, generate_group, group_for_profile
from repro.crypto.group import test_group as make_test_group  # avoid pytest collection


class TestParameters:
    def test_test_group_sizes(self, group):
        assert group.p.bit_length() == 128
        assert group.q.bit_length() == 96

    def test_p_and_q_prime(self, group):
        assert is_probable_prime(group.p)
        assert is_probable_prime(group.q)

    def test_q_divides_p_minus_1(self, group):
        assert (group.p - 1) % group.q == 0

    def test_generator_has_order_q(self, group):
        assert group.g != 1
        assert pow(group.g, group.q, group.p) == 1

    def test_deterministic(self):
        a = generate_group(128, 96)
        b = generate_group(128, 96)
        assert (a.p, a.q, a.g) == (b.p, b.q, b.g)

    def test_distinct_sizes_give_distinct_groups(self):
        assert generate_group(128, 96).p != generate_group(160, 96).p

    def test_default_group_sizes(self):
        g = default_group()
        assert g.p.bit_length() == 512
        assert g.q.bit_length() == 256

    def test_profiles(self):
        assert group_for_profile("test").p == make_test_group().p
        with pytest.raises(ValueError):
            group_for_profile("nope")

    def test_q_must_be_smaller_than_p(self):
        with pytest.raises(ValueError):
            generate_group(96, 96)


class TestOperations:
    def test_power_g_membership(self, group, rng):
        for _ in range(20):
            x = group.random_scalar(rng)
            assert group.is_element(group.power_g(x))

    def test_exponent_reduced_mod_q(self, group):
        x = 12345
        assert group.power_g(x) == group.power_g(x + group.q)

    def test_mul_inverse(self, group, rng):
        a = group.power_g(group.random_scalar(rng))
        assert group.mul(a, group.inv(a)) == 1

    def test_is_element_rejects_outsiders(self, group):
        assert not group.is_element(0)
        assert not group.is_element(group.p)
        # An element of order 2 subgroup generally isn't in the q-subgroup.
        assert not group.is_element(group.p - 1) or group.cofactor % 2 == 0

    def test_hash_to_group_lands_in_subgroup(self, group):
        for i in range(10):
            h = group.hash_to_group("test", i.to_bytes(4, "big"))
            assert group.is_element(h)
            assert h != 1

    def test_hash_to_group_deterministic_and_tag_separated(self, group):
        a = group.hash_to_group("tag-a", b"x")
        assert a == group.hash_to_group("tag-a", b"x")
        assert a != group.hash_to_group("tag-b", b"x")

    def test_hash_to_scalar_range(self, group):
        for i in range(10):
            s = group.hash_to_scalar("t", i.to_bytes(2, "big"))
            assert 0 <= s < group.q

    def test_element_encoding_fixed_width(self, group):
        width = (group.p.bit_length() + 7) // 8
        assert len(group.element_to_bytes(1)) == width
        assert len(group.element_to_bytes(group.p - 1)) == width

    def test_decode_element_accepts_members(self, group, rng):
        element = group.power_g(group.random_scalar(rng))
        assert group.decode_element(element) == element

    def test_decode_element_rejects_non_members(self, group):
        # 0 and p are out of range; p-1 has order 2 (q is odd).
        for bad in (0, group.p, group.p + 1):
            with pytest.raises(ValueError):
                group.decode_element(bad)
        if not group.is_element(group.p - 1):
            with pytest.raises(ValueError):
                group.decode_element(group.p - 1)

    def test_element_round_trip_through_bytes(self, group, rng):
        element = group.power_g(group.random_scalar(rng))
        data = group.element_to_bytes(element)
        assert group.element_from_bytes(data) == element

    def test_element_from_bytes_enforces_subgroup(self, group):
        width = (group.p.bit_length() + 7) // 8
        with pytest.raises(ValueError):
            group.element_from_bytes((group.p - 1).to_bytes(width, "big"))
        with pytest.raises(ValueError):
            group.element_from_bytes(b"\x00" * (width + 1))  # wrong width
