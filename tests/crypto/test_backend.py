"""Tests for the pluggable modular-exponentiation backends.

The contract under test: every backend computes bit-identical values for
every operation the group and fast path route through it, so backend
choice is purely a performance decision.  ``gmpy2`` is exercised only
when the library is importable — it must be reported unavailable, never
installed.
"""

from __future__ import annotations

import pytest

from repro.crypto import backend as backend_mod
from repro.crypto import schnorr
from repro.crypto.api import verifiers_for
from repro.crypto.backend import (
    DEFAULT_BACKEND,
    CryptoBackend,
    WindowBackend,
    active_backend,
    available_backends,
    backend_available,
    backend_names,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from random import Random


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"pure", "window", "gmpy2"} <= set(backend_names())

    def test_pure_and_window_always_available(self):
        assert backend_available("pure")
        assert backend_available("window")
        assert {"pure", "window"} <= set(available_backends())

    def test_available_backends_excludes_missing_gmpy2(self):
        import importlib.util

        present = importlib.util.find_spec("gmpy2") is not None
        assert backend_available("gmpy2") == present
        assert ("gmpy2" in available_backends()) == present

    def test_get_backend_unknown_name(self):
        with pytest.raises(ValueError, match="unknown"):
            get_backend("quantum")

    def test_get_backend_unavailable(self):
        if backend_available("gmpy2"):
            pytest.skip("gmpy2 installed in this environment")
        with pytest.raises(ValueError, match="not available"):
            get_backend("gmpy2")

    def test_get_backend_is_cached(self):
        assert get_backend("window") is get_backend("window")

    def test_register_custom_backend(self):
        name = "test-registry-custom"
        register_backend(name, CryptoBackend, available=lambda: True)
        try:
            assert name in backend_names()
            assert isinstance(get_backend(name), CryptoBackend)
        finally:
            backend_mod._REGISTRY.pop(name, None)
            backend_mod._INSTANCES.pop(name, None)

    def test_default_backend_is_window(self):
        assert DEFAULT_BACKEND == "window"

    def test_env_selects_initial_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_CRYPTO_BACKEND", "pure")
        assert backend_mod._initial_backend().name == "pure"
        monkeypatch.delenv("REPRO_CRYPTO_BACKEND")
        assert backend_mod._initial_backend().name == DEFAULT_BACKEND

    def test_use_backend_scopes_and_restores(self):
        before = active_backend()
        with use_backend("pure"):
            assert active_backend().name == "pure"
        assert active_backend() is before

    def test_set_backend_returns_previous(self):
        before = active_backend()
        previous = set_backend("pure")
        try:
            assert previous is before
            assert active_backend().name == "pure"
        finally:
            set_backend(before)


class TestBitIdentity:
    """Every available backend computes the same numbers."""

    def _ops(self, group):
        rng = Random(7)
        x = group.random_scalar(rng)
        a = group.power_g(group.random_scalar(rng))
        return (
            group.power_g(x),
            group.power(a, x),
            group.inv(a),
            group.hash_to_group("backend/identity", b"probe"),
            group.is_element(a),
        )

    def test_group_operations_identical(self, group):
        with use_backend("pure"):
            reference = self._ops(group)
        for name in available_backends():
            with use_backend(name):
                assert self._ops(group) == reference, name

    def test_batch_verification_identical(self, group):
        rng = Random(11)
        items = []
        for i in range(8):
            pair = schnorr.keygen(group, rng)
            message = b"backend/batch/%d" % i
            items.append(
                (pair.public, message, schnorr.sign(group, pair.secret, message, rng))
            )
        # Forge one item so the bisection path runs under each backend too.
        pk, message, sig = items[3]
        items[3] = (pk, message, type(sig)(sig.commitment, (sig.response + 1) % group.q))
        verdicts = []
        for name in available_backends():
            with use_backend(name):
                suite = verifiers_for(group)
                verdicts.append(suite.schnorr.verify_batch(items))
        expected = [True] * 8
        expected[3] = False
        assert all(v == expected for v in verdicts)

    def test_fixed_power_matches_pow(self, group):
        for name in available_backends():
            power = get_backend(name).fixed_power(
                group.g, group.p, group.q.bit_length()
            )
            for e in (0, 1, 2, group.q - 1, group.q // 3):
                assert power(e) == pow(group.g, e, group.p), name


class TestWindowBackend:
    def test_promotes_repeated_bases(self, group):
        b = WindowBackend(promote_after=3)
        base = group.power_g(1234)
        for _ in range(5):
            assert b.powmod(base, 99, group.p) == pow(base, 99, group.p)
        assert (base, group.p) in b._tables

    def test_negative_exponent_falls_back_to_pow(self, group):
        b = WindowBackend()
        base = group.power_g(5)
        assert b.powmod(base, -1, group.p) == pow(base, -1, group.p)

    def test_table_overflow_exponent_rejected(self, group):
        power = get_backend("window").fixed_power(group.g, group.p, 16)
        with pytest.raises(ValueError):
            power(1 << 20)
