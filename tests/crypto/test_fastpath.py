"""Tests for the crypto fast path: batch verification and precomputation.

The per-item oracles (``verify_schnorr_single`` / ``verify_dleq_single``)
are the correctness reference; everything here pins the batch path and the
exponentiation shortcuts to them / to plain ``pow``.
"""

from __future__ import annotations

from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import dleq, fastpath, schnorr, unique
from repro.crypto.dleq import DleqStatement
from repro.crypto.unique import message_point


# ---------------------------------------------------------------------------
# exponentiation primitives
# ---------------------------------------------------------------------------


class TestFixedBaseTable:
    def test_matches_pow(self, group, rng):
        table = fastpath.FixedBaseTable(group.p, group.g, group.q.bit_length())
        for _ in range(20):
            e = rng.randrange(group.q)
            assert table.power(e) == pow(group.g, e, group.p)

    def test_zero_and_max(self, group):
        bits = group.q.bit_length()
        table = fastpath.FixedBaseTable(group.p, group.g, bits)
        assert table.power(0) == 1
        top = (1 << bits) - 1
        assert table.power(top) == pow(group.g, top, group.p)

    def test_exponent_out_of_range(self, group):
        table = fastpath.FixedBaseTable(group.p, group.g, 16)
        with pytest.raises(ValueError):
            table.power(1 << 16)


class TestMultiExp:
    def test_straus_matches_pow(self, group, rng):
        pairs = [
            (group.power_g(rng.randrange(1, group.q)), rng.getrandbits(64))
            for _ in range(8)
        ]
        expected = 1
        for base, e in pairs:
            expected = expected * pow(base, e, group.p) % group.p
        assert fastpath.multi_exp_small(group.p, pairs) == expected

    def test_empty_product(self, group):
        assert fastpath.multi_exp_small(group.p, []) == 1

    def test_shamir_matches_pow(self, group, rng):
        for _ in range(10):
            b1 = group.power_g(rng.randrange(1, group.q))
            b2 = group.power_g(rng.randrange(1, group.q))
            e1, e2 = rng.randrange(group.q), rng.randrange(group.q)
            expected = pow(b1, e1, group.p) * pow(b2, e2, group.p) % group.p
            assert fastpath.simultaneous_power(group.p, b1, e1, b2, e2) == expected


# ---------------------------------------------------------------------------
# batch verification vs the per-item oracle
# ---------------------------------------------------------------------------


def _schnorr_items(group, rng, count):
    items = []
    for i in range(count):
        pair = schnorr.keygen(group, rng)
        message = b"fp/%d" % i
        items.append([pair.public, message, schnorr.sign(group, pair.secret, message, rng)])
    return items


def _dleq_items(group, rng, count, message=b"fp/dleq"):
    items = []
    for i in range(count):
        secret = group.random_scalar(rng)
        sig = unique.sign(group, secret, message, rng)
        statement = DleqStatement(
            group.g, group.power_g(secret), message_point(group, message), sig.value
        )
        items.append([statement, sig.proof])
    return items


class TestBatchSchnorr:
    def test_all_valid(self, group, rng):
        ctx = fastpath.FastPath(group)
        items = [tuple(i) for i in _schnorr_items(group, rng, 8)]
        assert fastpath.batch_verify_schnorr(ctx, items) == [True] * 8

    def test_forged_item_pinpointed(self, group, rng):
        ctx = fastpath.FastPath(group)
        items = _schnorr_items(group, rng, 8)
        pk, message, sig = items[3]
        items[3] = [pk, message, schnorr.SchnorrSignature(sig.commitment, (sig.response + 1) % group.q)]
        before = ctx.stats.bisections
        results = fastpath.batch_verify_schnorr(ctx, [tuple(i) for i in items])
        assert results == [True, True, True, False, True, True, True, True]
        assert ctx.stats.bisections > before  # the fallback actually ran

    def test_two_forgeries_both_isolated(self, group, rng):
        ctx = fastpath.FastPath(group)
        items = _schnorr_items(group, rng, 6)
        for bad in (0, 5):
            pk, message, sig = items[bad]
            items[bad] = [pk, b"other-message", sig]
        results = fastpath.batch_verify_schnorr(ctx, [tuple(i) for i in items])
        assert results == [False, True, True, True, True, False]

    def test_matches_oracle_exactly(self, group, rng):
        ctx = fastpath.FastPath(group)
        items = _schnorr_items(group, rng, 5)
        pk, message, sig = items[2]
        items[2] = [pk, message, schnorr.SchnorrSignature(1, sig.response)]
        items = [tuple(i) for i in items]
        oracle = [fastpath.verify_schnorr_single(group, *item) for item in items]
        assert fastpath.batch_verify_schnorr(ctx, items) == oracle


class TestBatchDleq:
    def test_all_valid(self, group, rng):
        ctx = fastpath.FastPath(group)
        items = [tuple(i) for i in _dleq_items(group, rng, 6)]
        assert fastpath.batch_verify_dleq(ctx, items) == [True] * 6

    def test_forged_item_pinpointed(self, group, rng):
        ctx = fastpath.FastPath(group)
        items = _dleq_items(group, rng, 6)
        statement, proof = items[4]
        items[4] = [
            statement,
            dleq.DleqProof(proof.commitment1, proof.commitment2, (proof.response + 1) % group.q),
        ]
        results = fastpath.batch_verify_dleq(ctx, [tuple(i) for i in items])
        assert results == [True, True, True, True, False, True]

    def test_non_member_element_rejected(self, group, rng):
        # An element outside the prime-order subgroup must never enter the
        # linear combination (RLC soundness); it is rejected item-wise and
        # the rest of the batch is unaffected.
        ctx = fastpath.FastPath(group)
        non_member = group.p - 1  # order 2, not in the subgroup (q odd)
        assert not ctx.is_member(non_member)
        items = _dleq_items(group, rng, 4)
        statement, proof = items[1]
        items[1] = [DleqStatement(statement.g1, non_member, statement.g2, statement.b), proof]
        results = fastpath.batch_verify_dleq(ctx, [tuple(i) for i in items])
        assert results == [True, False, True, True]

    def test_matches_oracle_exactly(self, group, rng):
        ctx = fastpath.FastPath(group)
        items = _dleq_items(group, rng, 5)
        statement, proof = items[0]
        items[0] = [statement, dleq.DleqProof(proof.commitment2, proof.commitment1, proof.response)]
        items = [tuple(i) for i in items]
        oracle = [fastpath.verify_dleq_single(group, s, pr) for s, pr in items]
        assert fastpath.batch_verify_dleq(ctx, items) == oracle


class TestBatchPropertyEquivalence:
    """Batch accepts exactly the items the per-item oracle accepts."""

    @settings(max_examples=15, deadline=None)
    @given(forged=st.sets(st.integers(min_value=0, max_value=6), max_size=7), seed=st.integers(0, 2**16))
    def test_schnorr_batch_iff_oracle(self, group, forged, seed):
        rng = Random(seed)
        ctx = fastpath.FastPath(group)
        items = _schnorr_items(group, rng, 7)
        for i in forged:
            pk, message, sig = items[i]
            items[i] = [pk, message, schnorr.SchnorrSignature(sig.commitment, (sig.response + 1 + i) % group.q)]
        items = [tuple(i) for i in items]
        oracle = [fastpath.verify_schnorr_single(group, *item) for item in items]
        assert fastpath.batch_verify_schnorr(ctx, items) == oracle
        assert oracle == [i not in forged for i in range(7)]

    @settings(max_examples=10, deadline=None)
    @given(forged=st.sets(st.integers(min_value=0, max_value=4), max_size=5), seed=st.integers(0, 2**16))
    def test_dleq_batch_iff_oracle(self, group, forged, seed):
        rng = Random(seed)
        ctx = fastpath.FastPath(group)
        items = _dleq_items(group, rng, 5)
        for i in forged:
            statement, proof = items[i]
            items[i] = [
                statement,
                dleq.DleqProof(proof.commitment1, proof.commitment2, (proof.response + 1 + i) % group.q),
            ]
        items = [tuple(i) for i in items]
        oracle = [fastpath.verify_dleq_single(group, s, p) for s, p in items]
        assert fastpath.batch_verify_dleq(ctx, items) == oracle


# ---------------------------------------------------------------------------
# context caches
# ---------------------------------------------------------------------------


class TestFastPathContext:
    def test_message_point_memoized(self, group):
        ctx = fastpath.FastPath(group)
        before = ctx.stats.h2_misses
        a = ctx.message_point(b"memo")
        b = ctx.message_point(b"memo")
        assert a == b == message_point(group, b"memo")
        assert ctx.stats.h2_misses == before + 1
        assert ctx.stats.h2_hits >= 1

    def test_membership_cache(self, group, rng):
        ctx = fastpath.FastPath(group)
        element = group.power_g(rng.randrange(1, group.q))
        misses = ctx.stats.member_misses
        assert ctx.is_member(element)
        assert ctx.is_member(element)
        assert ctx.stats.member_misses == misses + 1
        assert ctx.stats.member_hits >= 1

    def test_power_helpers_match_pow(self, group, rng):
        ctx = fastpath.FastPath(group)
        e = rng.randrange(group.q)
        assert ctx.power_g(e) == pow(group.g, e, group.p)
        base = group.power_g(rng.randrange(1, group.q))
        assert ctx.power_base(base, e) == pow(base, e, group.p)
        # second call goes through the cached per-base table
        assert ctx.power_base(base, e) == pow(base, e, group.p)

    def test_for_group_shares_context(self, group):
        assert fastpath.for_group(group) is fastpath.for_group(group)
