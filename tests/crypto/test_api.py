"""Tests for the unified verifier API (``repro.crypto.api``).

Covers: Protocol conformance, batch == single for every scheme, the API
being the *only* verification surface (the deprecated module-level
``verify`` wrappers are gone), and the API signers producing
bit-identical output to the module sign functions.
"""

from __future__ import annotations

from random import Random

from repro.crypto import api, dleq, multisig, schnorr, threshold, unique
from repro.crypto.dleq import DleqStatement
from repro.crypto.unique import message_point


def _suite(group):
    return api.verifiers_for(group)


class TestProtocols:
    def test_verifiers_conform(self, group):
        suite = _suite(group)
        for verifier in (
            suite.schnorr, suite.dleq, suite.unique, suite.threshold_share,
            suite.threshold, suite.multisig_share, suite.multisig,
        ):
            assert isinstance(verifier, api.Verifier)

    def test_signers_conform(self, group, rng):
        signer = api.SchnorrSigner(group, group.random_scalar(rng))
        assert isinstance(signer, api.Signer)

    def test_suite_is_cached(self, group):
        assert _suite(group) is _suite(group)


class TestSchnorrVerifier:
    def test_single_and_batch(self, group, rng):
        suite = _suite(group)
        items = []
        for i in range(5):
            pair = schnorr.keygen(group, rng)
            message = b"api/%d" % i
            items.append((pair.public, message, schnorr.sign(group, pair.secret, message, rng)))
        assert all(suite.schnorr.verify(*item) for item in items)
        assert suite.schnorr.verify_batch(items) == [True] * 5

    def test_out_of_range_response_rejected(self, group, rng):
        suite = _suite(group)
        pair = schnorr.keygen(group, rng)
        sig = schnorr.sign(group, pair.secret, b"m", rng)
        bad = schnorr.SchnorrSignature(sig.commitment, sig.response + group.q)
        assert not suite.schnorr.verify(pair.public, b"m", bad)

    def test_batch_report_counts(self, group, rng):
        suite = _suite(group)
        pair = schnorr.keygen(group, rng)
        good = schnorr.sign(group, pair.secret, b"m", rng)
        bad = schnorr.SchnorrSignature(good.commitment, (good.response + 1) % group.q)
        report = suite.schnorr.verify_batch_report(
            [(pair.public, b"m", good), (pair.public, b"m", bad)]
        )
        assert report.results == [True, False]
        assert report.stats.count == 2
        assert report.stats.invalid == 1
        assert not report.all_valid()


class TestAggregateVerifiers:
    def test_threshold_signature(self, group, rng):
        suite = _suite(group)
        pk, keys = threshold.keygen(group, threshold=3, n=5, rng=rng)
        shares = [threshold.sign_share(pk, k, b"beacon", rng) for k in keys[:3]]
        sig = threshold.combine(pk, b"beacon", shares)
        assert suite.threshold.verify(pk, b"beacon", sig)
        forged = threshold.ThresholdSignature(value=sig.value, shares=sig.shares[:2])
        assert not suite.threshold.verify(pk, b"beacon", forged)
        assert suite.threshold.verify_batch(
            [(pk, b"beacon", sig), (pk, b"beacon", forged)]
        ) == [True, False]

    def test_multisignature(self, group, rng):
        suite = _suite(group)
        pk, keys = multisig.keygen(group, threshold=3, n=4, rng=rng)
        shares = [multisig.sign_share(pk, k, b"notarize", rng) for k in keys[:3]]
        sig = multisig.combine(pk, b"notarize", shares)
        assert suite.multisig.verify(pk, b"notarize", sig)
        short = multisig.Multisignature(shares=sig.shares[:2])
        assert not suite.multisig.verify(pk, b"notarize", short)


class TestApiIsOnlyVerifySurface:
    """The deprecated module-level ``verify`` wrappers are removed; the
    scheme modules expose keygen/sign/combine only, and all verification
    goes through :func:`repro.crypto.api.verifiers_for`."""

    def test_wrappers_are_gone(self):
        for module in (schnorr, dleq, unique, threshold, multisig):
            assert not hasattr(module, "verify"), module.__name__
        for module in (threshold, multisig):
            assert not hasattr(module, "verify_share"), module.__name__

    def test_api_covers_every_scheme(self, group, rng):
        suite = _suite(group)

        secret = group.random_scalar(rng)
        usig = unique.sign(group, secret, b"m", rng)
        assert suite.unique.verify(group.power_g(secret), b"m", usig)

        h2 = message_point(group, b"m")
        proof = dleq.prove(group, secret, group.g, h2, rng)
        statement = DleqStatement(
            group.g, group.power_g(secret), h2, group.power(h2, secret)
        )
        assert suite.dleq.verify(statement, b"", proof)

        tpk, tkeys = threshold.keygen(group, threshold=2, n=3, rng=rng)
        tshare = threshold.sign_share(tpk, tkeys[0], b"m", rng)
        assert suite.threshold_share.verify(tpk, b"m", tshare)
        tsig = threshold.combine(
            tpk, b"m", [threshold.sign_share(tpk, k, b"m", rng) for k in tkeys[:2]]
        )
        assert suite.threshold.verify(tpk, b"m", tsig)

        mpk, mkeys = multisig.keygen(group, threshold=2, n=3, rng=rng)
        mshare = multisig.sign_share(mpk, mkeys[0], b"m", rng)
        assert suite.multisig_share.verify(mpk, b"m", mshare)
        msig = multisig.combine(
            mpk, b"m", [multisig.sign_share(mpk, k, b"m", rng) for k in mkeys[:2]]
        )
        assert suite.multisig.verify(mpk, b"m", msig)


class TestSignerBitIdentity:
    """API signers reproduce the module-level sign output draw-for-draw."""

    def test_schnorr(self, group):
        secret = 1234567
        a = schnorr.sign(group, secret, b"m", Random(7))
        b = api.SchnorrSigner(group, secret).sign(b"m", Random(7))
        assert a == b

    def test_unique(self, group):
        secret = 7654321
        a = unique.sign(group, secret, b"m", Random(9))
        b = api.UniqueSigner(group, secret).sign(b"m", Random(9))
        assert a == b

    def test_threshold_share(self, group, rng):
        pk, keys = threshold.keygen(group, threshold=2, n=3, rng=rng)
        a = threshold.sign_share(pk, keys[1], b"m", Random(11))
        b = api.ThresholdShareSigner(pk, keys[1]).sign(b"m", Random(11))
        assert a == b

    def test_multisig_share(self, group, rng):
        pk, keys = multisig.keygen(group, threshold=2, n=3, rng=rng)
        a = multisig.sign_share(pk, keys[2], b"m", Random(13))
        b = api.MultisigShareSigner(pk, keys[2]).sign(b"m", Random(13))
        assert a == b
