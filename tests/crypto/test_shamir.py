"""Unit and property tests for Shamir secret sharing."""

from __future__ import annotations

from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import PrimeField
from repro.crypto.shamir import Share, deal, lagrange_at_zero, reconstruct

FIELD = PrimeField(2**61 - 1)


class TestDeal:
    def test_share_count(self, rng):
        shares = deal(FIELD, 42, threshold=3, n=7, rng=rng)
        assert len(shares) == 7
        assert [s.index for s in shares] == list(range(1, 8))

    def test_threshold_bounds(self, rng):
        with pytest.raises(ValueError):
            deal(FIELD, 1, threshold=0, n=5, rng=rng)
        with pytest.raises(ValueError):
            deal(FIELD, 1, threshold=6, n=5, rng=rng)

    def test_threshold_one_is_replication(self, rng):
        shares = deal(FIELD, 99, threshold=1, n=4, rng=rng)
        assert all(s.value == 99 for s in shares)


class TestReconstruct:
    def test_exact_threshold(self, rng):
        shares = deal(FIELD, 123456, threshold=3, n=7, rng=rng)
        assert reconstruct(FIELD, shares[:3]) == 123456

    def test_any_subset(self, rng):
        shares = deal(FIELD, 777, threshold=3, n=7, rng=rng)
        assert reconstruct(FIELD, [shares[1], shares[4], shares[6]]) == 777

    def test_extra_shares_fine(self, rng):
        shares = deal(FIELD, 5, threshold=2, n=5, rng=rng)
        assert reconstruct(FIELD, shares) == 5

    def test_too_few_shares_gives_garbage(self, rng):
        """Fewer than threshold shares cannot reveal the secret (they
        interpolate a lower-degree polynomial through the wrong points)."""
        secret = 31337
        shares = deal(FIELD, secret, threshold=3, n=7, rng=rng)
        wrong = reconstruct(FIELD, shares[:2])
        # With overwhelming probability this is not the secret.
        assert wrong != secret

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            reconstruct(FIELD, [])

    @given(
        st.integers(min_value=0, max_value=2**61 - 2),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=4),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, secret, threshold, extra, pyrng):
        n = threshold + extra
        shares = deal(FIELD, secret, threshold=threshold, n=n, rng=pyrng)
        chosen = pyrng.sample(shares, threshold)
        assert reconstruct(FIELD, chosen) == secret


class TestTwoSharings:
    def test_shares_are_additive(self, rng):
        """Shamir sharing is linear: share-wise sums share the sum."""
        a = deal(FIELD, 100, threshold=2, n=4, rng=rng)
        b = deal(FIELD, 23, threshold=2, n=4, rng=rng)
        summed = [
            Share(index=x.index, value=FIELD.add(x.value, y.value))
            for x, y in zip(a, b)
        ]
        assert reconstruct(FIELD, summed[:2]) == 123

    def test_lagrange_helper_matches(self, rng):
        shares = deal(FIELD, 55, threshold=3, n=5, rng=rng)
        chosen = shares[1:4]
        lams = lagrange_at_zero(FIELD, [s.index for s in chosen])
        acc = sum(l * s.value for l, s in zip(lams, chosen)) % FIELD.modulus
        assert acc == 55
