"""The deterministic setup cache: hits equal fresh derivations, corruption
is detected and recomputed, and the escape hatches work.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.crypto import setup_cache
from repro.crypto.keyring import generate_keyrings, real_setup_cache_key
from repro.crypto.setup_cache import FORMAT_VERSION, SetupCache


def _cache(tmp_path) -> SetupCache:
    return SetupCache(directory=str(tmp_path / "cache"))


def test_memory_hit_returns_same_object(tmp_path):
    cache = _cache(tmp_path)
    key = ("scheme", 4, 1, 42)
    first = cache.get(key, lambda: {"derived": 1})
    second = cache.get(key, lambda: pytest.fail("must not re-derive"))
    assert second is first
    assert cache.stats.memory_hits == 1
    assert cache.stats.misses == 1


def test_disk_hit_equals_fresh_derivation(tmp_path):
    key = ("scheme", 4, 1, 42)
    value = {"keys": [1, 2, 3], "pk": (7, 11)}
    writer = _cache(tmp_path)
    writer.get(key, lambda: value)

    reader = SetupCache(directory=writer.directory)  # cold memory, same disk
    assert reader.get(key, lambda: pytest.fail("must hit disk")) == value
    assert reader.stats.disk_hits == 1


def test_distinct_keys_do_not_collide(tmp_path):
    cache = _cache(tmp_path)
    assert cache.get(("s", 4, 1, 42), lambda: "a") == "a"
    assert cache.get(("s", 4, 1, 43), lambda: "b") == "b"
    assert cache.get(("s", 4, 2, 42), lambda: "c") == "c"


def test_corrupted_entry_recomputed_never_trusted(tmp_path):
    key = ("scheme", 4, 1, 42)
    cache = _cache(tmp_path)
    cache.get(key, lambda: "good")
    path = cache._path(cache.digest(key))

    # Flip payload bytes: the stored hash no longer matches.
    blob = bytearray(open(path, "rb").read())
    blob[-1] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(blob))

    fresh = SetupCache(directory=cache.directory)
    assert fresh.get(key, lambda: "recomputed") == "recomputed"
    assert fresh.stats.disk_errors == 1
    assert fresh.stats.misses == 1
    # The rewrite healed the entry.
    healed = SetupCache(directory=cache.directory)
    assert healed.get(key, lambda: pytest.fail("must hit disk")) == "recomputed"


def test_truncated_entry_is_a_miss(tmp_path):
    key = ("scheme", 4, 1, 42)
    cache = _cache(tmp_path)
    cache.get(key, lambda: "good")
    path = cache._path(cache.digest(key))
    with open(path, "wb") as handle:
        handle.write(b"\x00" * 10)  # shorter than the 32-byte hash header

    fresh = SetupCache(directory=cache.directory)
    assert fresh.get(key, lambda: "recomputed") == "recomputed"
    assert fresh.stats.disk_errors == 1


def test_stale_format_version_invalidates(tmp_path, monkeypatch):
    key = ("scheme", 4, 1, 42)
    cache = _cache(tmp_path)
    cache.get(key, lambda: "v-old")
    monkeypatch.setattr(setup_cache, "FORMAT_VERSION", FORMAT_VERSION + 1)
    fresh = SetupCache(directory=cache.directory)
    assert fresh.get(key, lambda: "v-new") == "v-new"  # digest changed: miss


def test_unpicklable_payload_on_disk_is_rejected(tmp_path):
    import hashlib

    key = ("scheme", 4, 1, 42)
    cache = _cache(tmp_path)
    cache.get(key, lambda: "good")
    path = cache._path(cache.digest(key))
    # Valid hash over garbage that does not unpickle: still never trusted.
    payload = b"not a pickle"
    with open(path, "wb") as handle:
        handle.write(hashlib.sha256(payload).digest() + payload)

    fresh = SetupCache(directory=cache.directory)
    assert fresh.get(key, lambda: "recomputed") == "recomputed"
    assert fresh.stats.disk_errors == 1


def test_warm_preloads_valid_entries_only(tmp_path):
    cache = _cache(tmp_path)
    cache.get(("a",), lambda: 1)
    cache.get(("b",), lambda: 2)
    path = cache._path(cache.digest(("b",)))
    with open(path, "wb") as handle:
        handle.write(b"junk-junk-junk-junk-junk-junk-junk-junk")

    fresh = SetupCache(directory=cache.directory)
    assert fresh.warm() == 1
    assert fresh.stats.warmed == 1
    assert fresh.stats.disk_errors == 1
    assert len(fresh) == 1


def test_disabled_cache_always_derives(tmp_path):
    cache = SetupCache(directory=str(tmp_path), enabled=False)
    key = ("scheme", 1)
    assert cache.get(key, lambda: "x") == "x"
    assert cache.get(key, lambda: "y") == "y"  # no caching whatsoever
    assert cache.stats.misses == 2
    assert len(cache) == 0


def test_no_setup_cache_env_disables_default(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SETUP_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_NO_SETUP_CACHE", "1")
    setup_cache.reset()
    try:
        assert setup_cache.default_cache().enabled is False
        monkeypatch.setenv("REPRO_NO_SETUP_CACHE", "0")
        setup_cache.reset()
        cache = setup_cache.default_cache()
        assert cache.enabled is True
        assert cache.directory == str(tmp_path)
    finally:
        setup_cache.reset()  # next default_cache() re-reads the (clean) env


def test_keys_must_be_primitive_tuples():
    with pytest.raises(TypeError, match="primitives"):
        SetupCache.digest((object(),))
    with pytest.raises(TypeError, match="primitives"):
        SetupCache.digest((["list"],))


# -- integration with the real keyring backend --------------------------------


def test_cached_real_setup_verifies_identically(tmp_path):
    """Keyrings built from a disk-cache hit interoperate with fresh ones."""
    directory = str(tmp_path / "kr-cache")
    setup_cache.configure(directory=directory)
    try:
        fresh = generate_keyrings(4, 1, seed=99, backend="real", group_profile="test")
        assert setup_cache.default_cache().stats.misses == 1

        setup_cache.configure(directory=directory)  # cold memory, warm disk
        cached = generate_keyrings(4, 1, seed=99, backend="real", group_profile="test")
        assert setup_cache.default_cache().stats.disk_hits == 1

        message = b"cache-equivalence"
        # S_auth across the boundary, both directions.
        assert cached[1].verify_auth(1, message, fresh[0].sign_auth(message))
        assert fresh[1].verify_auth(2, message, cached[1].sign_auth(message))
        # Threshold notarization: shares from one side combine and verify
        # on the other.
        shares = [k.sign_notary_share(message) for k in fresh]
        agg = cached[0].combine_notary(message, shares)
        assert cached[2].verify_notary(message, agg)
        # Beacon: both sides derive the same unique value (the DLEQ proofs
        # on the carried shares are randomized, so compare .value, not the
        # whole object) and accept each other's combined signature.
        round_msg = b"beacon-round-5"
        sig_cached = cached[0].combine_beacon(
            round_msg, [k.sign_beacon_share(round_msg) for k in cached[:2]]
        )
        sig_fresh = fresh[0].combine_beacon(
            round_msg, [k.sign_beacon_share(round_msg) for k in fresh[:2]]
        )
        assert sig_cached.value == sig_fresh.value
        assert cached[3].verify_beacon(round_msg, sig_fresh)
        assert fresh[3].verify_beacon(round_msg, sig_cached)
    finally:
        setup_cache.reset()


def test_real_setup_cache_key_is_primitive():
    key = real_setup_cache_key("test", "dealer", 4, 1, 42)
    SetupCache.digest(key)  # raises TypeError if not primitive
    assert key[0] == "keyring-real-setup"


def test_fresh_and_cached_runs_give_identical_signatures(tmp_path):
    """Bit-identical keys: same seed, cache on or off, same signatures."""
    setup_cache.configure(directory=str(tmp_path / "c1"))
    try:
        with_cache = generate_keyrings(4, 1, seed=7, backend="real", group_profile="test")
        with_cache2 = generate_keyrings(4, 1, seed=7, backend="real", group_profile="test")
        setup_cache.configure(directory=None, enabled=False)
        without = generate_keyrings(4, 1, seed=7, backend="real", group_profile="test")
        message = b"determinism"
        sigs = [k.sign_auth(message) for k in (with_cache[0], with_cache2[0], without[0])]
        assert sigs[0] == sigs[1] == sigs[2]
    finally:
        setup_cache.reset()
