"""Tests for the multi-signature scheme (approach ii: S_notary / S_final)."""

from __future__ import annotations

from random import Random

import pytest

from repro.crypto import multisig
from repro.crypto.api import verifiers_for


@pytest.fixture(scope="module")
def suite(group):
    return verifiers_for(group)


@pytest.fixture(scope="module")
def setup(group):
    rng = Random(7)
    pk, keys = multisig.keygen(group, threshold=3, n=5, rng=rng)
    return pk, keys, rng


class TestShares:
    def test_sign_verify_share(self, setup, suite):
        pk, keys, rng = setup
        share = multisig.sign_share(pk, keys[0], b"block", rng)
        assert suite.multisig_share.verify(pk, b"block", share)

    def test_share_identifies_signer(self, setup, suite):
        pk, keys, rng = setup
        share = multisig.sign_share(pk, keys[2], b"block", rng)
        assert share.index == 3

    def test_wrong_message_rejected(self, setup, suite):
        pk, keys, rng = setup
        share = multisig.sign_share(pk, keys[0], b"block", rng)
        assert not suite.multisig_share.verify(pk, b"other", share)

    def test_reassigned_index_rejected(self, setup, suite):
        pk, keys, rng = setup
        share = multisig.sign_share(pk, keys[0], b"m", rng)
        forged = multisig.MultisigShare(index=2, signature=share.signature)
        assert not suite.multisig_share.verify(pk, b"m", forged)

    def test_out_of_range_index_rejected(self, setup, suite):
        pk, keys, rng = setup
        share = multisig.sign_share(pk, keys[0], b"m", rng)
        forged = multisig.MultisigShare(index=0, signature=share.signature)
        assert not suite.multisig_share.verify(pk, b"m", forged)


class TestAggregate:
    def test_combine_verify(self, setup, suite):
        pk, keys, rng = setup
        shares = [multisig.sign_share(pk, k, b"m", rng) for k in keys[:3]]
        agg = multisig.combine(pk, b"m", shares)
        assert suite.multisig.verify(pk, b"m", agg)

    def test_signatories_descriptor(self, setup, suite):
        """Approach (ii) signatures identify the signatories (Section 2.3)."""
        pk, keys, rng = setup
        shares = [multisig.sign_share(pk, k, b"m", rng) for k in (keys[1], keys[3], keys[4])]
        agg = multisig.combine(pk, b"m", shares)
        assert set(agg.signatories) == {2, 4, 5}

    def test_combine_dedupes(self, setup, suite):
        pk, keys, rng = setup
        s0 = multisig.sign_share(pk, keys[0], b"m", rng)
        shares = [s0, s0] + [multisig.sign_share(pk, k, b"m", rng) for k in keys[1:3]]
        agg = multisig.combine(pk, b"m", shares)
        assert len(set(agg.signatories)) == 3

    def test_too_few_raises(self, setup, suite):
        pk, keys, rng = setup
        shares = [multisig.sign_share(pk, k, b"m", rng) for k in keys[:2]]
        with pytest.raises(ValueError):
            multisig.combine(pk, b"m", shares)

    def test_below_threshold_aggregate_rejected(self, setup, suite):
        pk, keys, rng = setup
        shares = [multisig.sign_share(pk, k, b"m", rng) for k in keys[:3]]
        agg = multisig.combine(pk, b"m", shares)
        stripped = multisig.Multisignature(shares=agg.shares[:2])
        assert not suite.multisig.verify(pk, b"m", stripped)

    def test_wrong_message_rejected(self, setup, suite):
        pk, keys, rng = setup
        shares = [multisig.sign_share(pk, k, b"m", rng) for k in keys[:3]]
        agg = multisig.combine(pk, b"m", shares)
        assert not suite.multisig.verify(pk, b"other", agg)

    def test_duplicate_padding_rejected(self, setup, suite):
        """An aggregate padded with duplicates of one signer must not pass."""
        pk, keys, rng = setup
        s0 = multisig.sign_share(pk, keys[0], b"m", rng)
        fake = multisig.Multisignature(shares=(s0, s0, s0))
        assert not suite.multisig.verify(pk, b"m", fake)
