"""Tests for Schnorr signatures, DLEQ proofs and unique signatures.

Verification goes through :mod:`repro.crypto.api` (the only verification
surface since the deprecated module-level ``verify`` wrappers were
removed); signing and keygen stay on the scheme modules.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.crypto import dleq, schnorr, unique
from repro.crypto.api import verifiers_for
from repro.crypto.dleq import DleqStatement


@pytest.fixture(scope="module")
def suite(group):
    return verifiers_for(group)


class TestSchnorr:
    def test_sign_verify(self, group, rng, suite):
        keys = schnorr.keygen(group, rng)
        sig = schnorr.sign(group, keys.secret, b"hello", rng)
        assert suite.schnorr.verify(keys.public, b"hello", sig)

    def test_wrong_message_rejected(self, group, rng, suite):
        keys = schnorr.keygen(group, rng)
        sig = schnorr.sign(group, keys.secret, b"hello", rng)
        assert not suite.schnorr.verify(keys.public, b"goodbye", sig)

    def test_wrong_key_rejected(self, group, rng, suite):
        keys = schnorr.keygen(group, rng)
        other = schnorr.keygen(group, rng)
        sig = schnorr.sign(group, keys.secret, b"hello", rng)
        assert not suite.schnorr.verify(other.public, b"hello", sig)

    def test_tampered_response_rejected(self, group, rng, suite):
        keys = schnorr.keygen(group, rng)
        sig = schnorr.sign(group, keys.secret, b"m", rng)
        bad = schnorr.SchnorrSignature(sig.commitment, (sig.response + 1) % group.q)
        assert not suite.schnorr.verify(keys.public, b"m", bad)

    def test_tampered_commitment_rejected(self, group, rng, suite):
        keys = schnorr.keygen(group, rng)
        sig = schnorr.sign(group, keys.secret, b"m", rng)
        bad = schnorr.SchnorrSignature(group.power_g(3), sig.response)
        assert not suite.schnorr.verify(keys.public, b"m", bad)

    def test_out_of_range_values_rejected(self, group, rng, suite):
        keys = schnorr.keygen(group, rng)
        sig = schnorr.sign(group, keys.secret, b"m", rng)
        assert not suite.schnorr.verify(
            keys.public, b"m",
            schnorr.SchnorrSignature(sig.commitment, group.q + sig.response),
        )
        assert not suite.schnorr.verify(
            keys.public, b"m", schnorr.SchnorrSignature(0, sig.response)
        )

    def test_signatures_are_randomized(self, group, rng, suite):
        keys = schnorr.keygen(group, rng)
        a = schnorr.sign(group, keys.secret, b"m", rng)
        b = schnorr.sign(group, keys.secret, b"m", rng)
        assert a != b  # fresh nonce each time
        assert suite.schnorr.verify(keys.public, b"m", a)
        assert suite.schnorr.verify(keys.public, b"m", b)

    def test_to_bytes_length(self, group, rng):
        keys = schnorr.keygen(group, rng)
        sig = schnorr.sign(group, keys.secret, b"m", rng)
        q_width = (group.q.bit_length() + 7) // 8
        p_width = (group.p.bit_length() + 7) // 8
        assert len(sig.to_bytes(group)) == q_width + p_width


class TestDleq:
    def test_prove_verify(self, group, rng, suite):
        x = group.random_scalar(rng)
        g2 = group.hash_to_group("base2", b"x")
        proof = dleq.prove(group, x, group.g, g2, rng)
        statement = DleqStatement(group.g, group.power_g(x), g2, group.power(g2, x))
        assert suite.dleq.verify(statement, b"", proof)

    def test_wrong_statement_rejected(self, group, rng, suite):
        x = group.random_scalar(rng)
        y = (x + 1) % group.q
        g2 = group.hash_to_group("base2", b"x")
        proof = dleq.prove(group, x, group.g, g2, rng)
        # B = g2^y with y != x: proof must not verify.
        statement = DleqStatement(group.g, group.power_g(x), g2, group.power(g2, y))
        assert not suite.dleq.verify(statement, b"", proof)

    def test_tampered_proof_rejected(self, group, rng, suite):
        x = group.random_scalar(rng)
        g2 = group.hash_to_group("base2", b"x")
        proof = dleq.prove(group, x, group.g, g2, rng)
        statement = DleqStatement(group.g, group.power_g(x), g2, group.power(g2, x))
        bad = dleq.DleqProof(
            proof.commitment1, proof.commitment2, (proof.response + 1) % group.q
        )
        assert not suite.dleq.verify(statement, b"", bad)
        swapped = dleq.DleqProof(proof.commitment2, proof.commitment1, proof.response)
        assert not suite.dleq.verify(statement, b"", swapped)

    def test_non_element_inputs_rejected(self, group, rng, suite):
        x = group.random_scalar(rng)
        g2 = group.hash_to_group("base2", b"x")
        proof = dleq.prove(group, x, group.g, g2, rng)
        statement = DleqStatement(0, group.power_g(x), g2, group.power(g2, x))
        assert not suite.dleq.verify(statement, b"", proof)


class TestUniqueSignature:
    def test_sign_verify(self, group, rng, suite):
        keys = schnorr.keygen(group, rng)
        sig = unique.sign(group, keys.secret, b"msg", rng)
        assert suite.unique.verify(keys.public, b"msg", sig)

    def test_value_is_unique(self, group, rng):
        """The signature *value* is message+key determined (beacon property)."""
        keys = schnorr.keygen(group, rng)
        a = unique.sign(group, keys.secret, b"msg", rng)
        b = unique.sign(group, keys.secret, b"msg", rng)
        assert a.value == b.value
        assert a.proof != b.proof  # proofs are randomized, values are not

    def test_distinct_messages_distinct_values(self, group, rng):
        keys = schnorr.keygen(group, rng)
        a = unique.sign(group, keys.secret, b"m1", rng)
        b = unique.sign(group, keys.secret, b"m2", rng)
        assert a.value != b.value

    def test_wrong_key_rejected(self, group, rng, suite):
        keys = schnorr.keygen(group, rng)
        other = schnorr.keygen(group, rng)
        sig = unique.sign(group, keys.secret, b"msg", rng)
        assert not suite.unique.verify(other.public, b"msg", sig)

    def test_forged_value_rejected(self, group, rng, suite):
        keys = schnorr.keygen(group, rng)
        sig = unique.sign(group, keys.secret, b"msg", rng)
        forged = unique.UniqueSignature(value=group.power_g(7), proof=sig.proof)
        assert not suite.unique.verify(keys.public, b"msg", forged)
