"""Tests for the distributed key generation protocol."""

from __future__ import annotations

from random import Random

import pytest

from repro.crypto import threshold
from repro.crypto.api import verifiers_for
from repro.crypto.dkg import Deal, make_deal, run_dkg, verify_share
from repro.crypto.keyring import generate_keyrings


class TestHonestRun:
    def test_produces_working_threshold_keys(self, group, rng):
        result = run_dkg(group, h=3, n=7, rng=rng)
        assert result.qualified == set(range(1, 8))
        assert not result.complaints
        # The keys must behave exactly like dealer-generated ones.
        shares = [
            threshold.sign_share(result.public, k, b"msg", rng)
            for k in result.key_shares[:3]
        ]
        assert all(verifiers_for(group).threshold_share.verify(result.public, b"msg", s) for s in shares)
        sig = threshold.combine(result.public, b"msg", shares)
        assert verifiers_for(group).threshold.verify(result.public, b"msg", sig)

    def test_uniqueness_across_subsets(self, group, rng):
        result = run_dkg(group, h=3, n=7, rng=rng)
        a = threshold.combine(
            result.public, b"m",
            [threshold.sign_share(result.public, k, b"m", rng) for k in result.key_shares[:3]],
        )
        b = threshold.combine(
            result.public, b"m",
            [threshold.sign_share(result.public, k, b"m", rng) for k in result.key_shares[4:7]],
        )
        assert a.value == b.value

    def test_share_publics_consistent(self, group, rng):
        result = run_dkg(group, h=2, n=4, rng=rng)
        for key in result.key_shares:
            assert result.public.share_public(key.index) == group.power_g(key.secret)

    def test_master_public_matches_reconstruction(self, group, rng):
        from repro.crypto.shamir import Share, reconstruct

        result = run_dkg(group, h=3, n=7, rng=rng)
        secret = reconstruct(
            group.scalar_field,
            [Share(k.index, k.secret) for k in result.key_shares[:3]],
        )
        assert group.power_g(secret) == result.public.master_public

    def test_no_trusted_party_saw_the_secret(self, group, rng):
        """Any h shares reconstruct the same secret — but no single deal
        contains it (each dealer only knows its own summand)."""
        from repro.crypto.shamir import Share, reconstruct

        result = run_dkg(group, h=3, n=7, rng=rng)
        s1 = reconstruct(
            group.scalar_field, [Share(k.index, k.secret) for k in result.key_shares[:3]]
        )
        s2 = reconstruct(
            group.scalar_field, [Share(k.index, k.secret) for k in result.key_shares[4:7]]
        )
        assert s1 == s2

    def test_validation(self, group, rng):
        with pytest.raises(ValueError):
            run_dkg(group, h=0, n=4, rng=rng)
        with pytest.raises(ValueError):
            run_dkg(group, h=5, n=4, rng=rng)


class TestByzantineDealers:
    def test_inconsistent_share_disqualifies_dealer(self, group, rng):
        def corrupt_share(deal: Deal) -> Deal:
            shares = list(deal.shares)
            shares[2] = (shares[2] + 1) % group.q  # lie to party 3
            return Deal(dealer=deal.dealer, commitments=deal.commitments, shares=tuple(shares))

        result = run_dkg(group, h=3, n=7, rng=rng, tamper={2: corrupt_share})
        assert 2 not in result.qualified
        assert result.complaints[2] == {3}
        # The remaining key material still works.
        shares = [
            threshold.sign_share(result.public, k, b"m", rng)
            for k in result.key_shares[:3]
        ]
        sig = threshold.combine(result.public, b"m", shares)
        assert verifiers_for(group).threshold.verify(result.public, b"m", sig)

    def test_malformed_deal_disqualified(self, group, rng):
        def truncate(deal: Deal) -> Deal:
            return Deal(dealer=deal.dealer, commitments=deal.commitments[:-1], shares=deal.shares)

        result = run_dkg(group, h=3, n=7, rng=rng, tamper={5: truncate})
        assert 5 not in result.qualified

    def test_t_corrupt_dealers_tolerated(self, group, rng):
        def garbage(deal: Deal) -> Deal:
            shares = tuple((s + 7) % group.q for s in deal.shares)
            return Deal(dealer=deal.dealer, commitments=deal.commitments, shares=shares)

        result = run_dkg(group, h=3, n=7, rng=rng, tamper={1: garbage, 2: garbage})
        assert result.qualified == {3, 4, 5, 6, 7}
        shares = [
            threshold.sign_share(result.public, k, b"m", rng)
            for k in result.key_shares[4:7]
        ]
        sig = threshold.combine(result.public, b"m", shares)
        assert verifiers_for(group).threshold.verify(result.public, b"m", sig)

    def test_all_dealers_corrupt_fails_loudly(self, group, rng):
        def garbage(deal: Deal) -> Deal:
            shares = tuple((s + 1) % group.q for s in deal.shares)
            return Deal(dealer=deal.dealer, commitments=deal.commitments, shares=shares)

        with pytest.raises(RuntimeError):
            run_dkg(group, h=3, n=4, rng=rng, tamper={i: garbage for i in range(1, 5)})


class TestDealPrimitives:
    def test_honest_deal_verifies_everywhere(self, group, rng):
        deal = make_deal(group, dealer=1, h=3, n=5, rng=rng)
        assert all(verify_share(group, deal, j) for j in range(1, 6))

    def test_forged_share_fails(self, group, rng):
        deal = make_deal(group, dealer=1, h=3, n=5, rng=rng)
        forged = Deal(
            dealer=1,
            commitments=deal.commitments,
            shares=tuple((s + 1) % group.q for s in deal.shares),
        )
        assert not any(verify_share(group, forged, j) for j in range(1, 6))


class TestKeyringIntegration:
    def test_dkg_backed_keyring_runs_consensus(self):
        """End-to-end: beacon keys from the DKG drive an ICC0 cluster."""
        from repro.core import ClusterConfig, build_cluster
        from repro.sim.delays import FixedDelay

        config = ClusterConfig(
            n=4, t=1, delta_bound=0.5, epsilon=0.01,
            delay_model=FixedDelay(0.05), max_rounds=5, seed=1,
            crypto_backend="real",
        )
        # Rebuild keyrings with the DKG setup and swap them in.
        rings = generate_keyrings(4, 1, seed=1, backend="real", setup="dkg")
        cluster = build_cluster(config)
        for party, ring in zip(cluster.parties, rings):
            party.keys = ring
            party.pool._keys = ring
        cluster.start()
        assert cluster.run_until_all_committed_round(4, timeout=60)
        cluster.check_safety()

    def test_dkg_setup_rejected_for_fast_backend(self):
        # The fast backend has no real key material; setup is ignored there
        # by construction (documented) — but an explicit bad name fails.
        with pytest.raises(ValueError):
            generate_keyrings(4, 1, backend="real", setup="quantum")
