"""Backend-parity tests: the fast and real keyrings must be interchangeable.

Every behaviour the protocol observes is tested against both backends via
parametrized fixtures — this is what justifies running large experiments on
the fast backend (DESIGN.md §2).
"""

from __future__ import annotations

import pytest

from repro.crypto.keyring import generate_keyrings


@pytest.fixture(params=["fast", "real"], scope="module")
def rings(request):
    return generate_keyrings(4, 1, seed=5, backend=request.param)


class TestAuth:
    def test_sign_verify(self, rings):
        sig = rings[0].sign_auth(b"block")
        assert rings[1].verify_auth(1, b"block", sig)

    def test_wrong_signer_rejected(self, rings):
        sig = rings[0].sign_auth(b"block")
        assert not rings[1].verify_auth(2, b"block", sig)

    def test_wrong_message_rejected(self, rings):
        sig = rings[0].sign_auth(b"block")
        assert not rings[1].verify_auth(1, b"other", sig)

    def test_out_of_range_signer_rejected(self, rings):
        sig = rings[0].sign_auth(b"block")
        assert not rings[1].verify_auth(0, b"block", sig)
        assert not rings[1].verify_auth(5, b"block", sig)


class TestNotaryAndFinal:
    def test_notary_quorum_roundtrip(self, rings):
        m = b"notarize-me"
        shares = [r.sign_notary_share(m) for r in rings[:3]]  # n - t = 3
        assert all(rings[0].verify_notary_share(m, s) for s in shares)
        agg = rings[0].combine_notary(m, shares)
        assert rings[3].verify_notary(m, agg)

    def test_notary_under_quorum_raises(self, rings):
        m = b"notarize-me"
        shares = [r.sign_notary_share(m) for r in rings[:2]]
        with pytest.raises(ValueError):
            rings[0].combine_notary(m, shares)

    def test_notary_aggregate_wrong_message(self, rings):
        m = b"notarize-me"
        agg = rings[0].combine_notary(m, [r.sign_notary_share(m) for r in rings[:3]])
        assert not rings[1].verify_notary(b"else", agg)

    def test_final_is_independent_instance(self, rings):
        """A notary share must not verify as a finalization share."""
        m = b"message"
        notary_share = rings[0].sign_notary_share(m)
        assert not rings[1].verify_final_share(m, notary_share)

    def test_final_quorum_roundtrip(self, rings):
        m = b"finalize-me"
        shares = [r.sign_final_share(m) for r in rings[:3]]
        agg = rings[0].combine_final(m, shares)
        assert rings[2].verify_final(m, agg)


class TestBeacon:
    def test_quorum_is_t_plus_1(self, rings):
        m = b"beacon-round-1"
        shares = [r.sign_beacon_share(m) for r in rings[:2]]  # t + 1 = 2
        sig = rings[0].combine_beacon(m, shares)
        assert rings[3].verify_beacon(m, sig)

    def test_value_unique_across_subsets(self, rings):
        m = b"beacon-round-1"
        a = rings[0].combine_beacon(m, [r.sign_beacon_share(m) for r in rings[:2]])
        b = rings[0].combine_beacon(m, [r.sign_beacon_share(m) for r in rings[2:4]])
        assert rings[0].beacon_value(a) == rings[0].beacon_value(b)

    def test_values_differ_across_messages(self, rings):
        a = rings[0].combine_beacon(
            b"r1", [r.sign_beacon_share(b"r1") for r in rings[:2]]
        )
        b = rings[0].combine_beacon(
            b"r2", [r.sign_beacon_share(b"r2") for r in rings[:2]]
        )
        assert rings[0].beacon_value(a) != rings[0].beacon_value(b)

    def test_share_index(self, rings):
        share = rings[2].sign_beacon_share(b"m")
        assert rings[0].share_index(share) == 3

    def test_single_share_insufficient(self, rings):
        with pytest.raises(ValueError):
            rings[0].combine_beacon(b"m", [rings[0].sign_beacon_share(b"m")])


class TestFactory:
    def test_t_bound_enforced(self):
        with pytest.raises(ValueError):
            generate_keyrings(3, 1)  # 3t >= n

    def test_t_zero_allowed(self):
        rings = generate_keyrings(3, 0)
        assert len(rings) == 3

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            generate_keyrings(4, 1, backend="quantum")

    def test_deterministic_per_seed(self):
        a = generate_keyrings(4, 1, seed=1)
        b = generate_keyrings(4, 1, seed=1)
        assert a[0].sign_auth(b"x") == b[0].sign_auth(b"x")

    def test_seeds_differ(self):
        a = generate_keyrings(4, 1, seed=1)
        b = generate_keyrings(4, 1, seed=2)
        assert a[0].sign_auth(b"x") != b[0].sign_auth(b"x")
