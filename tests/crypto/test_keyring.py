"""Backend-parity tests: the fast and real keyrings must be interchangeable.

Every behaviour the protocol observes is tested against both backends via
parametrized fixtures — this is what justifies running large experiments on
the fast backend (DESIGN.md §2).
"""

from __future__ import annotations

import pytest

from repro.crypto.keyring import generate_keyrings


@pytest.fixture(params=["fast", "real"], scope="module")
def rings(request):
    return generate_keyrings(4, 1, seed=5, backend=request.param)


class TestAuth:
    def test_sign_verify(self, rings):
        sig = rings[0].sign_auth(b"block")
        assert rings[1].verify_auth(1, b"block", sig)

    def test_wrong_signer_rejected(self, rings):
        sig = rings[0].sign_auth(b"block")
        assert not rings[1].verify_auth(2, b"block", sig)

    def test_wrong_message_rejected(self, rings):
        sig = rings[0].sign_auth(b"block")
        assert not rings[1].verify_auth(1, b"other", sig)

    def test_out_of_range_signer_rejected(self, rings):
        sig = rings[0].sign_auth(b"block")
        assert not rings[1].verify_auth(0, b"block", sig)
        assert not rings[1].verify_auth(5, b"block", sig)


class TestNotaryAndFinal:
    def test_notary_quorum_roundtrip(self, rings):
        m = b"notarize-me"
        shares = [r.sign_notary_share(m) for r in rings[:3]]  # n - t = 3
        assert all(rings[0].verify_notary_share(m, s) for s in shares)
        agg = rings[0].combine_notary(m, shares)
        assert rings[3].verify_notary(m, agg)

    def test_notary_under_quorum_raises(self, rings):
        m = b"notarize-me"
        shares = [r.sign_notary_share(m) for r in rings[:2]]
        with pytest.raises(ValueError):
            rings[0].combine_notary(m, shares)

    def test_notary_aggregate_wrong_message(self, rings):
        m = b"notarize-me"
        agg = rings[0].combine_notary(m, [r.sign_notary_share(m) for r in rings[:3]])
        assert not rings[1].verify_notary(b"else", agg)

    def test_final_is_independent_instance(self, rings):
        """A notary share must not verify as a finalization share."""
        m = b"message"
        notary_share = rings[0].sign_notary_share(m)
        assert not rings[1].verify_final_share(m, notary_share)

    def test_final_quorum_roundtrip(self, rings):
        m = b"finalize-me"
        shares = [r.sign_final_share(m) for r in rings[:3]]
        agg = rings[0].combine_final(m, shares)
        assert rings[2].verify_final(m, agg)


class TestBeacon:
    def test_quorum_is_t_plus_1(self, rings):
        m = b"beacon-round-1"
        shares = [r.sign_beacon_share(m) for r in rings[:2]]  # t + 1 = 2
        sig = rings[0].combine_beacon(m, shares)
        assert rings[3].verify_beacon(m, sig)

    def test_value_unique_across_subsets(self, rings):
        m = b"beacon-round-1"
        a = rings[0].combine_beacon(m, [r.sign_beacon_share(m) for r in rings[:2]])
        b = rings[0].combine_beacon(m, [r.sign_beacon_share(m) for r in rings[2:4]])
        assert rings[0].beacon_value(a) == rings[0].beacon_value(b)

    def test_values_differ_across_messages(self, rings):
        a = rings[0].combine_beacon(
            b"r1", [r.sign_beacon_share(b"r1") for r in rings[:2]]
        )
        b = rings[0].combine_beacon(
            b"r2", [r.sign_beacon_share(b"r2") for r in rings[:2]]
        )
        assert rings[0].beacon_value(a) != rings[0].beacon_value(b)

    def test_share_index(self, rings):
        share = rings[2].sign_beacon_share(b"m")
        assert rings[0].share_index(share) == 3

    def test_single_share_insufficient(self, rings):
        with pytest.raises(ValueError):
            rings[0].combine_beacon(b"m", [rings[0].sign_beacon_share(b"m")])


class TestFactory:
    def test_t_bound_enforced(self):
        with pytest.raises(ValueError):
            generate_keyrings(3, 1)  # 3t >= n

    def test_t_zero_allowed(self):
        rings = generate_keyrings(3, 0)
        assert len(rings) == 3

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            generate_keyrings(4, 1, backend="quantum")

    def test_deterministic_per_seed(self):
        a = generate_keyrings(4, 1, seed=1)
        b = generate_keyrings(4, 1, seed=1)
        assert a[0].sign_auth(b"x") == b[0].sign_auth(b"x")

    def test_seeds_differ(self):
        a = generate_keyrings(4, 1, seed=1)
        b = generate_keyrings(4, 1, seed=2)
        assert a[0].sign_auth(b"x") != b[0].sign_auth(b"x")


class TestBatchVerification:
    """Both backends expose the batch API; results match the single path."""

    def test_auth_batch(self, rings):
        items = [(i, b"m%d" % i, rings[i - 1].sign_auth(b"m%d" % i)) for i in (1, 2, 3)]
        items.append((2, b"m1", items[0][2]))  # signer-1 sig claimed by 2
        report = rings[0].verify_auth_batch(items)
        assert report.results == [True, True, True, False]
        assert report.stats.count == 4 and report.stats.invalid == 1

    def test_notary_share_batch_matches_single(self, rings):
        items = [(b"msg", rings[i].sign_notary_share(b"msg")) for i in range(4)]
        items.append((b"other", items[0][1]))  # valid share, wrong message
        report = rings[0].verify_notary_share_batch(items)
        assert report.results == [
            rings[0].verify_notary_share(m, s) for m, s in items
        ]
        assert report.results == [True] * 4 + [False]

    def test_final_share_batch(self, rings):
        items = [(b"msg", rings[i].sign_final_share(b"msg")) for i in range(3)]
        assert rings[0].verify_final_share_batch(items).all_valid()
        # final and notary are independent scheme instances
        cross = [(b"msg", rings[0].sign_notary_share(b"msg"))]
        assert rings[0].verify_final_share_batch(cross).results == [False]

    def test_beacon_share_batch(self, rings):
        items = [(b"beacon", rings[i].sign_beacon_share(b"beacon")) for i in range(4)]
        bad = (b"beacon", rings[0].sign_beacon_share(b"not-beacon"))
        report = rings[0].verify_beacon_share_batch(items + [bad])
        assert report.results == [True] * 4 + [False]

    def test_empty_batch(self, rings):
        report = rings[0].verify_notary_share_batch([])
        assert report.results == [] and report.all_valid()

    def test_singleton_batch(self, rings):
        share = rings[1].sign_notary_share(b"solo")
        assert rings[0].verify_notary_share_batch([(b"solo", share)]).results == [True]


class TestResultCache:
    def test_repeat_verification_hits_cache(self):
        rings = generate_keyrings(4, 1, seed=5, backend="real", group_profile="test")
        ring = rings[0]
        share = rings[1].sign_notary_share(b"cached")
        assert ring.verify_notary_share(b"cached", share)
        misses = ring.cache_misses
        hits = ring.cache_hits
        assert ring.verify_notary_share(b"cached", share)
        assert ring.cache_hits == hits + 1
        assert ring.cache_misses == misses

    def test_batch_uses_cache(self):
        rings = generate_keyrings(4, 1, seed=5, backend="real", group_profile="test")
        ring = rings[0]
        items = [(b"msg", rings[i].sign_notary_share(b"msg")) for i in range(4)]
        first = ring.verify_notary_share_batch(items)
        assert first.all_valid()
        second = ring.verify_notary_share_batch(items)
        assert second.all_valid()
        assert second.stats.cache_hits == 4
        assert second.stats.cache_misses == 0

    def test_negative_verdicts_cached_too(self):
        rings = generate_keyrings(4, 1, seed=5, backend="real", group_profile="test")
        ring = rings[0]
        share = rings[1].sign_notary_share(b"one-message")
        assert not ring.verify_notary_share(b"another-message", share)
        hits = ring.cache_hits
        assert not ring.verify_notary_share(b"another-message", share)
        assert ring.cache_hits == hits + 1
