"""Unit and property tests for prime-field arithmetic."""

from __future__ import annotations

from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import PrimeField, is_probable_prime

Q = 2**61 - 1  # a Mersenne prime, handy as a test modulus
FIELD = PrimeField(Q)


class TestPrimality:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 97, 257, 7919):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 6, 9, 100, 561, 7917):  # 561 is a Carmichael number
            assert not is_probable_prime(c)

    def test_carmichael_numbers_rejected(self):
        for c in (561, 1105, 1729, 2465, 2821, 6601, 8911):
            assert not is_probable_prime(c)

    def test_large_prime(self):
        assert is_probable_prime(2**127 - 1)

    def test_large_composite(self):
        assert not is_probable_prime((2**61 - 1) * (2**31 - 1))


class TestFieldBasics:
    def test_rejects_composite_modulus(self):
        with pytest.raises(ValueError):
            PrimeField(100)

    def test_add_sub_roundtrip(self):
        assert FIELD.sub(FIELD.add(5, 7), 7) == 5

    def test_neg(self):
        assert FIELD.add(3, FIELD.neg(3)) == 0

    def test_inv(self):
        for a in (1, 2, 12345, Q - 1):
            assert FIELD.mul(a, FIELD.inv(a)) == 1

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            FIELD.inv(0)

    def test_div(self):
        assert FIELD.div(FIELD.mul(7, 9), 9) == 7

    def test_pow_matches_builtin(self):
        assert FIELD.pow(3, 100) == pow(3, 100, Q)

    def test_reduce(self):
        assert FIELD.reduce(Q + 5) == 5
        assert FIELD.reduce(-1) == Q - 1

    def test_random_in_range(self):
        rng = Random(1)
        for _ in range(100):
            assert 0 <= FIELD.random(rng) < Q
            assert 1 <= FIELD.random_nonzero(rng) < Q


class TestPolynomials:
    def test_eval_constant(self):
        assert FIELD.eval_poly([42], 17) == 42

    def test_eval_linear(self):
        # f(x) = 3 + 5x
        assert FIELD.eval_poly([3, 5], 2) == 13

    def test_eval_matches_horner_by_hand(self):
        coeffs = [1, 2, 3]  # 1 + 2x + 3x^2
        assert FIELD.eval_poly(coeffs, 10) == (1 + 20 + 300) % Q


class TestLagrange:
    def test_two_points_line(self):
        # f(x) = 10 + 7x; f(1)=17, f(2)=24; recover f(0)=10.
        lams = FIELD.lagrange_coefficients_at_zero([1, 2])
        value = (lams[0] * 17 + lams[1] * 24) % Q
        assert value == 10

    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError):
            FIELD.lagrange_coefficients_at_zero([1, 1])

    def test_zero_point_rejected(self):
        with pytest.raises(ValueError):
            FIELD.lagrange_coefficients_at_zero([0, 1])

    @given(
        st.lists(st.integers(min_value=0, max_value=Q - 1), min_size=1, max_size=5),
        st.sets(st.integers(min_value=1, max_value=1000), min_size=5, max_size=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_interpolation_recovers_f0(self, coeffs, xs):
        """Any deg-(k-1) polynomial is recovered from >= k points."""
        if len(xs) < len(coeffs):
            return
        points = sorted(xs)[: max(len(coeffs), 2)]
        lams = FIELD.lagrange_coefficients_at_zero(points)
        acc = 0
        for lam, x in zip(lams, points):
            acc = (acc + lam * FIELD.eval_poly(coeffs, x)) % Q
        assert acc == coeffs[0] % Q

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_coefficients_sum_to_one(self, k):
        """Interpolating the constant polynomial 1 must give 1."""
        points = list(range(1, k + 1))
        lams = FIELD.lagrange_coefficients_at_zero(points)
        assert sum(lams) % Q == 1
