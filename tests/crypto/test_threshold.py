"""Tests for the (t, h, n)-threshold unique-signature scheme (approach iii)."""

from __future__ import annotations

import pytest

from repro.crypto import threshold
from repro.crypto.api import verifiers_for


@pytest.fixture(scope="module")
def suite(group):
    return verifiers_for(group)


@pytest.fixture(scope="module")
def setup(group):
    from random import Random

    rng = Random(99)
    pk, keys = threshold.keygen(group, threshold=3, n=7, rng=rng)
    return group, pk, keys, rng


class TestKeygen:
    def test_share_publics_match_secrets(self, setup):
        group, pk, keys, _ = setup
        for key in keys:
            assert pk.share_public(key.index) == group.power_g(key.secret)

    def test_master_public_consistent_with_shares(self, setup):
        """Recombining share secrets gives the master secret (in exponent)."""
        group, pk, keys, _ = setup
        from repro.crypto.shamir import Share, reconstruct

        secret = reconstruct(
            group.scalar_field, [Share(k.index, k.secret) for k in keys[:3]]
        )
        assert group.power_g(secret) == pk.master_public


class TestShares:
    def test_share_sign_verify(self, setup, suite):
        group, pk, keys, rng = setup
        share = threshold.sign_share(pk, keys[0], b"message", rng)
        assert suite.threshold_share.verify(pk, b"message", share)

    def test_share_wrong_message_rejected(self, setup, suite):
        group, pk, keys, rng = setup
        share = threshold.sign_share(pk, keys[0], b"message", rng)
        assert not suite.threshold_share.verify(pk, b"other", share)

    def test_share_wrong_index_rejected(self, setup, suite):
        group, pk, keys, rng = setup
        share = threshold.sign_share(pk, keys[0], b"m", rng)
        forged = threshold.SignatureShare(index=2, value=share.value, proof=share.proof)
        assert not suite.threshold_share.verify(pk, b"m", forged)

    def test_share_index_out_of_range_rejected(self, setup, suite):
        group, pk, keys, rng = setup
        share = threshold.sign_share(pk, keys[0], b"m", rng)
        forged = threshold.SignatureShare(index=99, value=share.value, proof=share.proof)
        assert not suite.threshold_share.verify(pk, b"m", forged)


class TestCombine:
    def test_combine_and_verify(self, setup, suite):
        group, pk, keys, rng = setup
        shares = [threshold.sign_share(pk, k, b"m", rng) for k in keys[:3]]
        sig = threshold.combine(pk, b"m", shares)
        assert suite.threshold.verify(pk, b"m", sig)

    def test_uniqueness_across_share_subsets(self, setup):
        """The combined value is identical for ANY valid share subset —
        the property the random beacon depends on (Section 2.3)."""
        group, pk, keys, rng = setup
        a = threshold.combine(
            pk, b"m", [threshold.sign_share(pk, k, b"m", rng) for k in keys[:3]]
        )
        b = threshold.combine(
            pk, b"m", [threshold.sign_share(pk, k, b"m", rng) for k in keys[4:7]]
        )
        assert a.value == b.value

    def test_value_is_master_signature(self, setup):
        """Combined value equals H2(m)^master_sk (combination in exponent)."""
        group, pk, keys, rng = setup
        from repro.crypto.shamir import Share, reconstruct
        from repro.crypto.unique import message_point

        master = reconstruct(
            group.scalar_field, [Share(k.index, k.secret) for k in keys[:3]]
        )
        sig = threshold.combine(
            pk, b"m", [threshold.sign_share(pk, k, b"m", rng) for k in keys[:3]]
        )
        assert sig.value == group.power(message_point(group, b"m"), master)

    def test_too_few_shares_raises(self, setup):
        group, pk, keys, rng = setup
        shares = [threshold.sign_share(pk, k, b"m", rng) for k in keys[:2]]
        with pytest.raises(ValueError):
            threshold.combine(pk, b"m", shares)

    def test_duplicate_shares_dont_count(self, setup):
        group, pk, keys, rng = setup
        share = threshold.sign_share(pk, keys[0], b"m", rng)
        with pytest.raises(ValueError):
            threshold.combine(pk, b"m", [share, share, share])

    def test_forged_combined_rejected(self, setup, suite):
        group, pk, keys, rng = setup
        shares = [threshold.sign_share(pk, k, b"m", rng) for k in keys[:3]]
        sig = threshold.combine(pk, b"m", shares)
        forged = threshold.ThresholdSignature(value=group.power_g(5), shares=sig.shares)
        assert not suite.threshold.verify(pk, b"m", forged)

    def test_combined_wrong_message_rejected(self, setup, suite):
        group, pk, keys, rng = setup
        shares = [threshold.sign_share(pk, k, b"m", rng) for k in keys[:3]]
        sig = threshold.combine(pk, b"m", shares)
        assert not suite.threshold.verify(pk, b"other", sig)

    def test_verify_rejects_insufficient_carried_shares(self, setup, suite):
        group, pk, keys, rng = setup
        shares = [threshold.sign_share(pk, k, b"m", rng) for k in keys[:3]]
        sig = threshold.combine(pk, b"m", shares)
        stripped = threshold.ThresholdSignature(value=sig.value, shares=sig.shares[:2])
        assert not suite.threshold.verify(pk, b"m", stripped)
