"""Tests for proactive resharing of the threshold key."""

from __future__ import annotations

from random import Random

import pytest

from repro.crypto import threshold
from repro.crypto.api import verifiers_for
from repro.crypto.resharing import (
    ReshareDeal,
    ResharingError,
    make_reshare_deal,
    reshare,
    resharing_traffic_bytes,
    verify_reshare_deal,
)


@pytest.fixture(scope="module")
def setup(group):
    rng = Random(17)
    public, keys = threshold.keygen(group, threshold=3, n=7, rng=rng)
    return group, public, keys, rng


class TestHonestResharing:
    def test_master_public_unchanged(self, setup):
        group, public, keys, rng = setup
        new_public, new_keys = reshare(group, public, keys[:3], rng)
        assert new_public.master_public == public.master_public

    def test_new_shares_sign_and_combine(self, setup):
        group, public, keys, rng = setup
        new_public, new_keys = reshare(group, public, keys[:3], rng)
        shares = [threshold.sign_share(new_public, k, b"m", rng) for k in new_keys[:3]]
        assert all(verifiers_for(group).threshold_share.verify(new_public, b"m", s) for s in shares)
        sig = threshold.combine(new_public, b"m", shares)
        assert verifiers_for(group).threshold.verify(new_public, b"m", sig)

    def test_signature_value_identical_across_epochs(self, setup):
        """The unique signature (hence the beacon chain) is epoch-invariant."""
        group, public, keys, rng = setup
        new_public, new_keys = reshare(group, public, keys[2:5], rng)
        old = threshold.combine(
            public, b"beacon", [threshold.sign_share(public, k, b"beacon", rng) for k in keys[:3]]
        )
        new = threshold.combine(
            new_public, b"beacon",
            [threshold.sign_share(new_public, k, b"beacon", rng) for k in new_keys[4:7]],
        )
        assert old.value == new.value

    def test_shares_actually_changed(self, setup):
        group, public, keys, rng = setup
        new_public, new_keys = reshare(group, public, keys[:3], rng)
        assert all(a.secret != b.secret for a, b in zip(keys, new_keys))

    def test_old_and_new_shares_do_not_mix(self, setup):
        """A t-of-old + 1-of-new coalition cannot combine — the proactive
        security property."""
        group, public, keys, rng = setup
        new_public, new_keys = reshare(group, public, keys[:3], rng)
        mixed = [
            threshold.sign_share(public, keys[0], b"m", rng),
            threshold.sign_share(public, keys[1], b"m", rng),
            threshold.sign_share(new_public, new_keys[2], b"m", rng),
        ]
        sig = threshold.combine(public, b"m", mixed)
        # The combination is syntactically possible but cryptographically
        # wrong: it fails verification under either public key.
        assert not verifiers_for(group).threshold.verify(public, b"m", sig)
        assert not verifiers_for(group).threshold.verify(new_public, b"m", sig)

    def test_chained_epochs(self, setup):
        group, public, keys, rng = setup
        p1, k1 = reshare(group, public, keys[:3], rng)
        p2, k2 = reshare(group, p1, k1[4:7], rng)
        assert p2.master_public == public.master_public
        sig = threshold.combine(
            p2, b"x", [threshold.sign_share(p2, k, b"x", rng) for k in k2[:3]]
        )
        assert verifiers_for(group).threshold.verify(p2, b"x", sig)

    def test_any_contributor_subset_equivalent(self, setup):
        """Different contributor sets produce different shares but the
        same functional key."""
        group, public, keys, rng = setup
        pa, ka = reshare(group, public, keys[:3], rng)
        pb, kb = reshare(group, public, keys[4:7], rng)
        sig_a = threshold.combine(
            pa, b"m", [threshold.sign_share(pa, k, b"m", rng) for k in ka[:3]]
        )
        sig_b = threshold.combine(
            pb, b"m", [threshold.sign_share(pb, k, b"m", rng) for k in kb[:3]]
        )
        assert sig_a.value == sig_b.value


class TestByzantineContributors:
    def test_wrong_constant_term_detected(self, setup):
        """A contributor cannot reshare a value other than its real share."""
        group, public, keys, rng = setup

        def lie(deal: ReshareDeal) -> ReshareDeal:
            fake = [group.power_g(12345)] + list(deal.commitments[1:])
            return ReshareDeal(dealer=deal.dealer, commitments=tuple(fake), shares=deal.shares)

        with pytest.raises(ResharingError):
            reshare(group, public, keys[:3], rng, tamper={keys[0].index: lie})

    def test_inconsistent_private_share_detected(self, setup):
        group, public, keys, rng = setup

        def corrupt(deal: ReshareDeal) -> ReshareDeal:
            shares = list(deal.shares)
            shares[4] = (shares[4] + 1) % group.q
            return ReshareDeal(dealer=deal.dealer, commitments=deal.commitments, shares=tuple(shares))

        with pytest.raises(ResharingError):
            reshare(group, public, keys[:3], rng, tamper={keys[0].index: corrupt})

    def test_retry_with_honest_contributors_succeeds(self, setup):
        group, public, keys, rng = setup

        def corrupt(deal: ReshareDeal) -> ReshareDeal:
            shares = tuple((s + 1) % group.q for s in deal.shares)
            return ReshareDeal(dealer=deal.dealer, commitments=deal.commitments, shares=shares)

        with pytest.raises(ResharingError):
            reshare(group, public, keys[:3], rng, tamper={keys[1].index: corrupt})
        new_public, new_keys = reshare(group, public, keys[3:6], rng)
        assert new_public.master_public == public.master_public


class TestPrimitives:
    def test_honest_deal_verifies(self, setup):
        group, public, keys, rng = setup
        deal = make_reshare_deal(group, keys[2], h=3, n=7, rng=rng)
        assert verify_reshare_deal(group, public, deal)

    def test_contributor_count_enforced(self, setup):
        group, public, keys, rng = setup
        with pytest.raises(ValueError):
            reshare(group, public, keys[:2], rng)
        with pytest.raises(ValueError):
            reshare(group, public, [keys[0], keys[0], keys[1]], rng)

    def test_traffic_model_positive_and_quadraticish(self):
        small = resharing_traffic_bytes(13)
        large = resharing_traffic_bytes(40)
        assert 0 < small < large
