"""Critical-path reconstruction: telescoping stage sums + theory bounds."""

from __future__ import annotations

import pytest

from repro.analysis import theory
from repro.analysis.critical_path import (
    BASELINE_STAGES,
    ICC_STAGES,
    baseline_paths,
    critical_paths,
    format_paths,
    stage_means,
    stage_totals,
)
from repro.analysis.trace import message_counts
from repro.baselines import BaselineClusterConfig, HotStuffParty, build_baseline_cluster
from repro.core import build_cluster
from repro.experiments.common import make_icc_config
from repro.obs import Tracer
from repro.sim.delays import FixedDelay, UniformDelay

N, T = 4, 1
DELTA = 0.05
ROUNDS = 8
QUORUM = N - T

#: "1 tick": the acceptance tolerance for the telescoping identity.
TICK = 1e-9


def run_traced(protocol: str, delay_model=None) -> Tracer:
    tracer = Tracer()
    config = make_icc_config(
        protocol,
        n=N,
        t=T,
        delta_bound=DELTA * 6,
        delay_model=delay_model or FixedDelay(DELTA),
        epsilon=0.01,
        seed=7,
        max_rounds=ROUNDS + 2,
    )
    config.tracer = tracer
    cluster = build_cluster(config)
    cluster.start()
    cluster.run_until_all_committed_round(ROUNDS, timeout=300.0)
    cluster.check_safety()
    return tracer


class TestTelescoping:
    @pytest.mark.parametrize("protocol", ["icc0", "icc1"])
    def test_stage_sums_equal_finalization_latency(self, protocol):
        tracer = run_traced(
            protocol, delay_model=UniformDelay(DELTA * 0.4, DELTA)
        )
        paths = critical_paths(tracer.events(), quorum=QUORUM)
        assert len(paths) >= ROUNDS - 1
        for path in paths:
            measured = path.finalized - path.entered
            assert abs(path.total - measured) <= TICK
            assert tuple(s.stage for s in path.spans) == ICC_STAGES
            for span in path.spans:
                assert span.duration >= 0.0
            assert path.block

    def test_fixed_delay_matches_paper_stage_structure(self):
        """With a fixed delay δ and instant proposals, notarization takes
        2δ (block hop + share hop) and finalization one more δ."""
        tracer = run_traced("icc0")
        paths = critical_paths(tracer.events(), quorum=QUORUM)
        steady = [p for p in paths if 2 <= p.round <= ROUNDS - 1]
        assert steady
        for path in steady:
            gossip = path.stage("gossip_transit")
            notar = path.stage("notarization_quorum")
            final = path.stage("finalization_quorum")
            assert abs(gossip.duration + notar.duration - 2 * DELTA) < TICK
            assert abs(final.duration - DELTA) < TICK


class TestTheoryBounds:
    def test_icc0_messages_within_paper_bounds(self):
        tracer = run_traced("icc0")
        per_round = {
            rnd: count
            for rnd, count in message_counts(tracer.events()).items()
            if rnd is not None and rnd > 0
        }
        assert per_round
        sync = theory.synchronous_messages_per_round(N)
        worst = theory.worst_case_messages_per_round(N)
        for rnd, count in per_round.items():
            assert count <= worst, f"round {rnd}: {count} > worst-case {worst}"
        # Fault-free fixed-delay runs must also respect the 8n^2 bound.
        full_rounds = [c for r, c in per_round.items() if 1 <= r <= ROUNDS]
        assert max(full_rounds) <= sync


class TestBaselinePaths:
    def test_hotstuff_paths_telescope(self):
        tracer = Tracer()
        config = BaselineClusterConfig(
            party_class=HotStuffParty,
            n=N,
            t=T,
            seed=7,
            delay_model=FixedDelay(DELTA),
            party_kwargs={"max_heights": 6},
            tracer=tracer,
        )
        cluster = build_baseline_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_height(5, timeout=300.0)
        paths = baseline_paths(tracer.events())
        assert len(paths) >= 5
        for path in paths:
            assert tuple(s.stage for s in path.spans) == BASELINE_STAGES
            assert abs(path.total - (path.finalized - path.entered)) <= TICK


class TestHelpers:
    def test_stage_totals_and_means(self):
        tracer = run_traced("icc0")
        paths = critical_paths(tracer.events(), quorum=QUORUM)
        totals = stage_totals(paths)
        means = stage_means(paths)
        assert set(totals) == set(ICC_STAGES)
        for stage in ICC_STAGES:
            assert abs(means[stage] * len(paths) - totals[stage]) < 1e-9
        assert stage_means([]) == {}

    def test_format_paths_renders_table(self):
        tracer = run_traced("icc0")
        paths = critical_paths(tracer.events(), quorum=QUORUM)
        text = format_paths(paths)
        assert "gossip_transit" in text
        assert str(paths[0].round) in text
        assert format_paths([]) == "no finalized heights in trace"

    def test_empty_trace_yields_no_paths(self):
        assert critical_paths([]) == []
        assert baseline_paths([]) == []
