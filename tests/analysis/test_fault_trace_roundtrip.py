"""Every fault.* event kind must survive export -> load -> analysis.

Chaos traces are the main reason traces get archived; a fault event the
analysis loader chokes on (or silently mangles) would make those
archives unreadable.  This synthesizes one event per registered
``fault.*`` kind straight from the registry's declared fields, round-
trips the file, and feeds it to every loader — then does the same with
a real chaos-scenario trace.
"""

from __future__ import annotations

import io

from repro.analysis.critical_path import baseline_paths, critical_paths
from repro.analysis.trace import (
    adversary_timeline,
    message_counts,
    round_breakdown,
    summarize,
)
from repro.obs import EVENT_KINDS, TraceEvent, read_jsonl, write_jsonl

#: Plausible JSON-safe sample values per declared payload field name.
_SAMPLES = {
    "scenario": "chaos-042",
    "seed": 42,
    "events": 7,
    "group": [1, 2],
    "heal_time": 12.5,
    "kind": "NotarizationShare",
    "receiver": 3,
    "extra": 0.25,
    "until": 30.0,
}


def fault_kinds() -> list[str]:
    kinds = sorted(k for k in EVENT_KINDS if k.startswith("fault."))
    assert kinds, "registry lost its fault.* kinds"
    return kinds


def synthetic_events() -> list[TraceEvent]:
    events = []
    for i, kind in enumerate(fault_kinds()):
        spec = EVENT_KINDS[kind]
        payload = {field: _SAMPLES[field] for field in spec.fields}
        events.append(
            TraceEvent(
                time=float(i),
                party=(i % 4) + 1,
                protocol="faults",
                round=i + 1,
                kind=kind,
                payload=payload,
            )
        )
    return events


class TestSyntheticFaultRoundTrip:
    def test_every_fault_kind_round_trips_exactly(self):
        events = synthetic_events()
        buffer = io.StringIO()
        count = write_jsonl(events, buffer)
        assert count == len(events)
        buffer.seek(0)
        loaded = read_jsonl(buffer)
        assert loaded == events  # dataclass equality: every field intact

    def test_loaders_accept_pure_fault_traces(self):
        buffer = io.StringIO()
        write_jsonl(synthetic_events(), buffer)
        buffer.seek(0)
        events = read_jsonl(buffer)
        summary = summarize(events)
        assert summary.events == len(events)
        assert summary.blocks_committed == 0
        assert message_counts(events) == {}
        assert round_breakdown(events) == {}
        assert adversary_timeline(events) == []
        assert critical_paths(events) == []
        assert baseline_paths(events) == []

    def test_declared_fields_cover_all_samples(self):
        for kind in fault_kinds():
            for field in EVENT_KINDS[kind].fields:
                assert field in _SAMPLES, (
                    f"{kind} declares field {field!r}: add a sample value "
                    "so the round-trip test keeps covering it"
                )


class TestChaosTraceRoundTrip:
    def test_real_chaos_trace_round_trips_and_analyzes(self, tmp_path):
        from repro.experiments import runner
        from repro.experiments.chaos import specs

        trace_dir = tmp_path / "traces"
        suite = specs(
            seeds=[3], protocols=("ICC0",), n=4, duration=15.0, intensity=1.5
        )
        runner.execute(suite, jobs=1, trace_dir=str(trace_dir))
        files = [
            p for p in sorted(trace_dir.iterdir())
            if p.name.endswith(".jsonl") and p.name != "runner.jsonl"
        ]
        assert files
        events = read_jsonl(str(files[0]))
        assert events

        # Round-trip again through an in-memory file: stable fixpoint.
        buffer = io.StringIO()
        write_jsonl(events, buffer)
        buffer.seek(0)
        assert read_jsonl(buffer) == events

        # Every fault kind present parses and analyzers accept the mix.
        summary = summarize(events)
        assert summary.events == len(events)
        for kind in summary.kinds:
            assert kind in EVENT_KINDS
        message_counts(events)
        round_breakdown(events)
        adversary_timeline(events)
        for path in critical_paths(events):
            assert abs(path.total - (path.finalized - path.entered)) <= 1e-9
