"""Shared fixtures for the test suite.

Tests default to the fast crypto backend and small groups so the suite
stays quick; dedicated crypto tests exercise the real backend explicitly.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.crypto.group import test_group
from repro.crypto.keyring import generate_keyrings


@pytest.fixture(scope="session")
def group():
    """Small (insecure, fast) Schnorr group shared across crypto tests."""
    return test_group()


@pytest.fixture
def rng():
    return Random(1234)


@pytest.fixture(scope="session")
def fast_keyrings_4_1():
    """4 parties, t=1, fast backend."""
    return generate_keyrings(4, 1, seed=42, backend="fast")


@pytest.fixture(scope="session")
def real_keyrings_4_1():
    """4 parties, t=1, real discrete-log backend (test group)."""
    return generate_keyrings(4, 1, seed=42, backend="real", group_profile="test")
