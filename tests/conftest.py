"""Shared fixtures for the test suite.

Tests default to the fast crypto backend and small groups so the suite
stays quick; dedicated crypto tests exercise the real backend explicitly.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.crypto import setup_cache
from repro.crypto.group import test_group
from repro.crypto.keyring import generate_keyrings


@pytest.fixture(scope="session", autouse=True)
def _isolated_setup_cache(tmp_path_factory):
    """Point the setup cache at a per-session tmp dir, never ~/.cache.

    Both the live configuration and the environment override are set, so
    tests that call ``setup_cache.reset()`` (re-reading the environment)
    still land in the tmp dir.
    """
    import os

    directory = str(tmp_path_factory.mktemp("setup-cache"))
    previous = os.environ.get("REPRO_SETUP_CACHE_DIR")
    os.environ["REPRO_SETUP_CACHE_DIR"] = directory
    setup_cache.configure(directory=directory)
    yield
    if previous is None:
        os.environ.pop("REPRO_SETUP_CACHE_DIR", None)
    else:
        os.environ["REPRO_SETUP_CACHE_DIR"] = previous
    setup_cache.reset()


@pytest.fixture(scope="session")
def group():
    """Small (insecure, fast) Schnorr group shared across crypto tests."""
    return test_group()


@pytest.fixture
def rng():
    return Random(1234)


@pytest.fixture(scope="session")
def fast_keyrings_4_1():
    """4 parties, t=1, fast backend."""
    return generate_keyrings(4, 1, seed=42, backend="fast")


@pytest.fixture(scope="session")
def real_keyrings_4_1():
    """4 parties, t=1, real discrete-log backend (test group)."""
    return generate_keyrings(4, 1, seed=42, backend="real", group_profile="test")
