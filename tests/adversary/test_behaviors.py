"""Byzantine-behaviour tests: safety and liveness under every attack."""

from __future__ import annotations

import pytest

from repro.adversary import (
    AggressiveByzantineMixin,
    EquivocatingProposerMixin,
    LazyLeaderMixin,
    SilentMixin,
    SlowProposerMixin,
    WithholdFinalizationMixin,
    WithholdNotarizationMixin,
    corrupt_class,
)
from repro.core import ClusterConfig, Payload, build_cluster
from repro.core.icc0 import ICC0Party
from repro.sim.delays import FixedDelay


def run_with_corrupt(corrupt, n=7, t=2, rounds=12, seed=1, timeout=300.0, **overrides):
    config = ClusterConfig(
        n=n,
        t=t,
        delta_bound=0.3,
        epsilon=0.01,
        delay_model=FixedDelay(0.05),
        max_rounds=rounds,
        seed=seed,
        corrupt=corrupt,
        **overrides,
    )
    cluster = build_cluster(config)
    cluster.start()
    cluster.run_until_all_committed_round(rounds - 2, timeout=timeout)
    cluster.check_safety()
    return cluster


class TestCrashFailures:
    def test_t_crashes_tolerated(self):
        cluster = run_with_corrupt({1: None, 2: None})
        assert cluster.min_committed_round() >= 10

    def test_crashed_never_proposes(self):
        cluster = run_with_corrupt({1: None, 2: None})
        proposers = {b.proposer for b in cluster.party(3).output_log}
        assert not proposers & {1, 2}


class TestSilent:
    def test_silent_tolerated(self):
        silent = corrupt_class(ICC0Party, SilentMixin)
        cluster = run_with_corrupt({1: silent, 2: silent})
        assert cluster.min_committed_round() >= 10

    def test_silent_sends_nothing(self):
        silent = corrupt_class(ICC0Party, SilentMixin)
        cluster = run_with_corrupt({1: silent})
        assert cluster.metrics.bytes_sent[1] == 0


class TestEquivocation:
    def test_safety_under_equivocation(self):
        equivocator = corrupt_class(ICC0Party, EquivocatingProposerMixin)
        cluster = run_with_corrupt({1: equivocator, 2: equivocator}, rounds=15)
        assert cluster.min_committed_round() >= 13

    def test_equivocating_ranks_get_disqualified(self):
        equivocator = corrupt_class(ICC0Party, EquivocatingProposerMixin)
        cluster = run_with_corrupt({1: equivocator, 2: equivocator}, rounds=15)
        assert cluster.metrics.counters["ranks-disqualified"] > 0

    def test_equivocated_block_never_in_two_outputs(self):
        """No two honest parties commit different blocks at any depth."""
        equivocator = corrupt_class(ICC0Party, EquivocatingProposerMixin)
        cluster = run_with_corrupt({1: equivocator, 2: equivocator}, rounds=15)
        by_round: dict[int, set[bytes]] = {}
        for party in cluster.honest_parties:
            for block in party.output_log:
                by_round.setdefault(block.round, set()).add(block.hash)
        assert all(len(hashes) == 1 for hashes in by_round.values())


class TestWithholding:
    def test_withheld_finalization_does_not_block_commits(self):
        withholder = corrupt_class(ICC0Party, WithholdFinalizationMixin)
        cluster = run_with_corrupt({1: withholder, 2: withholder})
        assert cluster.min_committed_round() >= 10

    def test_withheld_notarization_does_not_block_progress(self):
        withholder = corrupt_class(ICC0Party, WithholdNotarizationMixin)
        cluster = run_with_corrupt({1: withholder, 2: withholder})
        assert cluster.min_committed_round() >= 10


class TestAggressive:
    def test_safety_under_aggressive_byzantine(self):
        attacker = corrupt_class(ICC0Party, AggressiveByzantineMixin)
        cluster = run_with_corrupt({1: attacker, 2: attacker}, rounds=15)
        assert cluster.min_committed_round() >= 13

    def test_larger_cluster_full_t(self):
        attacker = corrupt_class(ICC0Party, AggressiveByzantineMixin)
        cluster = run_with_corrupt(
            {1: attacker, 2: attacker, 3: attacker},
            n=10,
            t=3,
            rounds=12,
            seed=3,
        )
        assert cluster.min_committed_round() >= 10


class TestLazyLeader:
    def test_lazy_leader_stalls_commands_not_rounds(self):
        """A lazy leader still moves the chain, just with empty payloads
        (the 'not as useful' degradation the paper describes)."""

        def source(party, round, chain):
            return Payload(commands=(b"real-command",))

        lazy = corrupt_class(ICC0Party, LazyLeaderMixin)
        cluster = run_with_corrupt(
            {1: lazy, 2: lazy}, rounds=15, payload_source=source
        )
        assert cluster.min_committed_round() >= 13
        log = cluster.party(3).output_log
        lazy_blocks = [b for b in log if b.proposer in (1, 2)]
        honest_blocks = [b for b in log if b.proposer not in (1, 2)]
        assert all(not b.payload.commands for b in lazy_blocks)
        assert all(b.payload.commands for b in honest_blocks)


class TestSlowProposer:
    def test_slow_leaders_delay_but_do_not_stop_rounds(self):
        slow = corrupt_class(ICC0Party, SlowProposerMixin)
        slow.propose_lag = 2.0
        cluster = run_with_corrupt({1: slow, 2: slow}, rounds=10, timeout=600)
        assert cluster.min_committed_round() >= 8
        # Some rounds were slow (the attacker-led ones), but bounded by
        # the fallback: other parties propose after Δprop(rank).
        durations = cluster.metrics.round_durations(3)
        assert max(durations.values()) < 2.5


class TestBeyondThreshold:
    def test_too_many_aggressive_parties_can_violate_safety_or_not(self):
        """With 2t corrupt (> n/3) the safety argument no longer holds.

        We don't assert a violation happens (the attack here is not
        optimally coordinated), only that the machinery *detects* one if
        it does — the run must either stay safe or raise/flag divergence,
        never silently diverge.
        """
        from repro.core.icc0 import SafetyViolation

        attacker = corrupt_class(ICC0Party, AggressiveByzantineMixin)
        config = ClusterConfig(
            n=7,
            t=2,  # keyring thresholds stay at t=2 (quorum 5)...
            delta_bound=0.3,
            epsilon=0.01,
            delay_model=FixedDelay(0.05),
            max_rounds=10,
            seed=9,
            corrupt={1: attacker, 2: attacker},
        )
        cluster = build_cluster(config)
        cluster.start()
        try:
            cluster.run_for(60.0)
            cluster.check_safety()
        except (SafetyViolation, AssertionError):
            pass  # detected divergence is acceptable beyond threshold
