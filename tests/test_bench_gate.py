"""Unit tests for tools/bench_gate.py (pure gate functions + CLI)."""

from __future__ import annotations

import importlib.util
import json
import os
import sys

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_gate",
    os.path.join(os.path.dirname(__file__), "..", "tools", "bench_gate.py"),
)
bench_gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_gate)


def crypto_report(speedups: dict[str, float]) -> dict:
    return {
        "benchmark": "crypto fast path",
        "results": [
            {"primitive": name, "speedup": value}
            for name, value in speedups.items()
        ],
    }


def runner_report(speedup, cores=4, disk=6.0, identical=True) -> dict:
    return {
        "benchmark": "experiment-runner",
        "cores": cores,
        "speedup": speedup,
        "results_identical": identical,
        "setup_cache": {"speedup_disk": disk},
    }


class TestGateCrypto:
    def test_within_tolerance_passes(self):
        committed = crypto_report({"schnorr": 10.0, "dleq": 3.4})
        fresh = crypto_report({"schnorr": 8.0, "dleq": 3.0})
        assert bench_gate.gate_crypto(committed, fresh, 0.25) == []

    def test_regression_beyond_tolerance_fails(self):
        committed = crypto_report({"schnorr": 10.0})
        fresh = crypto_report({"schnorr": 7.0})
        failures = bench_gate.gate_crypto(committed, fresh, 0.25)
        assert len(failures) == 1
        assert "schnorr" in failures[0]

    def test_improvement_always_passes(self):
        committed = crypto_report({"schnorr": 10.0})
        fresh = crypto_report({"schnorr": 25.0})
        assert bench_gate.gate_crypto(committed, fresh, 0.25) == []

    def test_missing_primitive_fails(self):
        committed = crypto_report({"schnorr": 10.0, "dleq": 3.4})
        fresh = crypto_report({"schnorr": 10.0})
        failures = bench_gate.gate_crypto(committed, fresh, 0.25)
        assert any("dleq" in f and "missing" in f for f in failures)

    def test_batch_slower_than_single_fails_regardless_of_baseline(self):
        committed = crypto_report({"schnorr": 0.9})
        fresh = crypto_report({"schnorr": 0.9})
        failures = bench_gate.gate_crypto(committed, fresh, 0.25)
        assert any("slower than single" in f for f in failures)


class TestGateRunner:
    def test_within_tolerance_passes(self):
        committed = runner_report(2.0)
        fresh = runner_report(1.6)
        assert bench_gate.gate_runner(committed, fresh, 0.25) == []

    def test_speedup_regression_fails(self):
        committed = runner_report(2.0)
        fresh = runner_report(1.0)
        failures = bench_gate.gate_runner(committed, fresh, 0.25)
        assert any("runner.speedup" in f for f in failures)

    def test_skipped_legs_gate_nothing(self):
        committed = runner_report("skipped", cores=1)
        fresh = runner_report("skipped", cores=1)
        assert bench_gate.gate_runner(committed, fresh, 0.25) == []
        # Mixed: committed numeric, fresh skipped (moved to 1-core CI).
        assert bench_gate.gate_runner(runner_report(2.0), fresh, 0.25) == []

    def test_nonidentical_results_fail(self):
        failures = bench_gate.gate_runner(
            runner_report(2.0), runner_report(2.0, identical=False), 0.25
        )
        assert any("differ" in f for f in failures)

    def test_setup_cache_regression_fails(self):
        failures = bench_gate.gate_runner(
            runner_report(2.0, disk=6.0), runner_report(2.0, disk=2.0), 0.25
        )
        assert any("setup_cache" in f for f in failures)


def load_report(gain=25.0, speedup=4.0, match=True) -> dict:
    return {
        "benchmark": "load pipeline",
        "sim": {"batching_gain": gain},
        "auth": {"speedup": speedup},
        "request_sets_match": match,
    }


class TestGateLoad:
    def test_within_tolerance_passes(self):
        assert bench_gate.gate_load(load_report(), load_report(gain=20.0), 0.25) == []

    def test_batching_gain_regression_fails(self):
        failures = bench_gate.gate_load(
            load_report(gain=25.0), load_report(gain=10.0), 0.25
        )
        assert any("batching_gain" in f for f in failures)

    def test_auth_speedup_regression_fails(self):
        failures = bench_gate.gate_load(
            load_report(speedup=4.0), load_report(speedup=2.0), 0.25
        )
        assert any("load.auth.speedup" in f for f in failures)

    def test_request_set_mismatch_fails_either_side(self):
        failures = bench_gate.gate_load(
            load_report(match=False), load_report(), 0.25
        )
        assert any("committed" in f and "differ" in f for f in failures)
        failures = bench_gate.gate_load(
            load_report(), load_report(match=False), 0.25
        )
        assert any("fresh" in f and "differ" in f for f in failures)

    def test_batch_auth_slower_than_single_fails(self):
        failures = bench_gate.gate_load(
            load_report(speedup=0.8), load_report(speedup=0.8), 0.25
        )
        assert any("slower than per-item" in f for f in failures)

    def test_improvement_always_passes(self):
        assert bench_gate.gate_load(
            load_report(gain=10.0, speedup=2.0),
            load_report(gain=40.0, speedup=8.0),
            0.25,
        ) == []


def hotpath_report(best=3.0, queue=1.3, identical=True) -> dict:
    return {
        "benchmark": "hot-path profile",
        "backends": {
            "pure": {"ops_per_sec": 1000.0, "speedup": 1.0},
            "window": {"ops_per_sec": 1000.0 * best, "speedup": best},
            "gmpy2": "skipped",
        },
        "best_backend": "window",
        "best_speedup": best,
        "event_queue": {
            "heap_ops_per_sec": 100000.0,
            "calendar_ops_per_sec": 100000.0 * queue,
            "speedup": queue,
        },
        "results_identical": identical,
    }


def shard_report(gain=4.0, penalty=2.4, monotonic=True, forged=True, identical=True) -> dict:
    return {
        "benchmark": "multi-subnet sharding",
        "scaling": {
            "ks": [1, 2, 4],
            "goodput_by_k": {"1": 200.0, "2": 400.0, "4": 800.0},
            "scaling_gain": gain,
            "monotonic": monotonic,
        },
        "cross": {
            "xfrac": 0.25,
            "latency_penalty": penalty,
            "cross_committed": 208,
            "rejected": 0,
        },
        "forged_rejected": forged,
        "results_identical": identical,
    }


def live_breakdown(telescope=True, uncertainty=0.004) -> dict:
    return {
        "heights": 18,
        "spans_telescope": telescope,
        "max_residual_s": 0.0,
        "clock_uncertainty_s": uncertainty,
        "finalization_latency_mean_s": 0.08,
        "stage_means_s": {
            "propose_wait": 0.01,
            "wire_transit": 0.02,
            "notarization_quorum": 0.03,
            "finalization_quorum": 0.02,
        },
        "wire_transit": {"spans": 120, "mean_s": 0.006,
                         "p50_s": 0.005, "p99_s": 0.012},
    }


def live_report(
    n=4, target=20, min_height=20, live_ok=True, safety_ok=True,
    reporting=None, requests=160, p50=0.12, p90=0.14, rate=16.0,
    breakdown="default",
) -> dict:
    return {
        "benchmark": "live transport",
        "seed": 0,
        "cluster": {"n": n, "t": 1, "protocol": "icc0",
                    "transport": "tcp-localhost", "epsilon": 0.05},
        "target_height": target,
        "live": {
            "live_ok": live_ok,
            "safety_ok": safety_ok,
            "parties_reporting": n if reporting is None else reporting,
            "min_height": min_height,
            "max_height": min_height + 1,
            "wall_seconds": 1.3,
            "heights_per_sec": rate,
            "requests_completed": requests,
            "request_latency_p50": p50,
            "request_latency_p90": p90,
            "latency_breakdown": (
                live_breakdown() if breakdown == "default" else breakdown
            ),
        },
    }


class TestGateLive:
    def test_identical_snapshots_pass(self):
        assert bench_gate.gate_live(live_report(), live_report(target=5, min_height=5), 0.25) == []

    def test_liveness_failure_fails_either_side(self):
        failures = bench_gate.gate_live(
            live_report(live_ok=False), live_report(target=5, min_height=5), 0.25
        )
        assert any("committed" in f and "liveness" in f for f in failures)
        failures = bench_gate.gate_live(
            live_report(), live_report(target=5, min_height=5, live_ok=False), 0.25
        )
        assert any("fresh" in f and "liveness" in f for f in failures)

    def test_safety_violation_fails(self):
        failures = bench_gate.gate_live(
            live_report(safety_ok=False), live_report(target=5, min_height=5), 0.25
        )
        assert any("prefix property" in f for f in failures)

    def test_missing_party_fails(self):
        failures = bench_gate.gate_live(
            live_report(reporting=3), live_report(target=5, min_height=5), 0.25
        )
        assert any("3/4 parties" in f for f in failures)

    def test_height_below_target_fails(self):
        failures = bench_gate.gate_live(
            live_report(min_height=19), live_report(target=5, min_height=5), 0.25
        )
        assert any("below target" in f for f in failures)

    def test_inconsistent_latencies_fail(self):
        failures = bench_gate.gate_live(
            live_report(p50=0.2, p90=0.1), live_report(target=5, min_height=5), 0.25
        )
        assert any("latencies" in f for f in failures)

    def test_zero_requests_skips_latency_check(self):
        assert bench_gate.gate_live(
            live_report(requests=0, p50=None, p90=None),
            live_report(target=5, min_height=5), 0.25,
        ) == []

    def test_missing_breakdown_fails_either_side(self):
        failures = bench_gate.gate_live(
            live_report(breakdown=None), live_report(target=5, min_height=5), 0.25
        )
        assert any("committed" in f and "latency_breakdown" in f for f in failures)
        failures = bench_gate.gate_live(
            live_report(),
            live_report(target=5, min_height=5, breakdown=None), 0.25,
        )
        assert any("fresh" in f and "latency_breakdown" in f for f in failures)

    def test_non_telescoping_spans_fail(self):
        failures = bench_gate.gate_live(
            live_report(breakdown=live_breakdown(telescope=False)),
            live_report(target=5, min_height=5), 0.25,
        )
        assert any("telescope" in f for f in failures)

    def test_unbounded_clock_uncertainty_fails(self):
        for bad in (float("inf"), float("nan"), -1.0, None):
            failures = bench_gate.gate_live(
                live_report(),
                live_report(target=5, min_height=5,
                            breakdown=live_breakdown(uncertainty=bad)),
                0.25,
            )
            assert any("uncertainty" in f for f in failures), bad

    def test_committed_snapshot_must_target_twenty_heights(self):
        """The acceptance floor: a quick-probe snapshot cannot be the
        committed baseline."""
        failures = bench_gate.gate_live(
            live_report(target=5, min_height=5),
            live_report(target=5, min_height=5), 0.25,
        )
        assert any("acceptance floor is 20" in f for f in failures)


class TestGateShard:
    def test_identical_snapshots_pass(self):
        assert bench_gate.gate_shard(shard_report(), shard_report(), 0.25) == []

    def test_scaling_gain_regression_fails(self):
        failures = bench_gate.gate_shard(
            shard_report(gain=4.0), shard_report(gain=2.0), 0.25
        )
        assert any("scaling_gain" in f for f in failures)

    def test_nonmonotonic_scaling_fails_either_side(self):
        failures = bench_gate.gate_shard(
            shard_report(monotonic=False), shard_report(), 0.25
        )
        assert any("committed" in f and "monotonically" in f for f in failures)
        failures = bench_gate.gate_shard(
            shard_report(), shard_report(monotonic=False), 0.25
        )
        assert any("fresh" in f and "monotonically" in f for f in failures)

    def test_unrejected_forgery_fails(self):
        failures = bench_gate.gate_shard(
            shard_report(), shard_report(forged=False), 0.25
        )
        assert any("forged" in f for f in failures)

    def test_nonidentical_results_fail(self):
        failures = bench_gate.gate_shard(
            shard_report(), shard_report(identical=False), 0.25
        )
        assert any("parallel" in f for f in failures)

    def test_sub_one_penalty_fails(self):
        failures = bench_gate.gate_shard(
            shard_report(penalty=0.5), shard_report(penalty=0.5), 0.25
        )
        assert any("cannot be faster" in f for f in failures)

    def test_improvement_always_passes(self):
        assert bench_gate.gate_shard(
            shard_report(gain=3.0), shard_report(gain=4.0), 0.25
        ) == []


class TestAuditSnapshot:
    def test_single_core_numeric_speedup_is_nonsense(self):
        failures = bench_gate.audit_snapshot(runner_report(0.683, cores=1))
        assert failures and "cores=1" in failures[0]

    def test_single_core_skipped_is_fine(self):
        assert bench_gate.audit_snapshot(runner_report("skipped", cores=1)) == []

    def test_multicore_numeric_is_fine(self):
        assert bench_gate.audit_snapshot(runner_report(2.0, cores=4)) == []


class TestCommittedSnapshots:
    def test_committed_runner_snapshot_is_sane(self):
        with open(bench_gate.RUNNER_BASELINE, encoding="utf-8") as handle:
            report = json.load(handle)
        assert bench_gate.audit_snapshot(report) == []

    def test_committed_crypto_snapshot_has_speedups_above_one(self):
        with open(bench_gate.CRYPTO_BASELINE, encoding="utf-8") as handle:
            report = json.load(handle)
        for row in report["results"]:
            assert row["speedup"] >= 1.0, row

    def test_committed_load_snapshot_is_sane(self):
        with open(bench_gate.LOAD_BASELINE, encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["request_sets_match"] is True
        assert report["sim"]["batching_gain"] > 1.0
        assert report["auth"]["speedup"] >= 1.0

    def test_committed_shard_snapshot_is_sane(self):
        with open(bench_gate.SHARD_BASELINE, encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["scaling"]["monotonic"] is True
        assert report["scaling"]["scaling_gain"] > 1.0
        assert report["cross"]["latency_penalty"] >= 1.0
        assert report["forged_rejected"] is True
        assert report["results_identical"] is True
        # Gating the committed snapshot against itself must pass.
        assert bench_gate.gate_shard(report, report, 0.25) == []

    def test_committed_hotpath_snapshot_is_sane(self):
        with open(bench_gate.HOTPATH_BASELINE, encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["results_identical"] is True
        assert report["best_speedup"] >= 2.0
        assert report["event_queue"]["speedup"] >= 1.0
        # Gating the committed snapshot against itself must pass.
        assert bench_gate.gate_hotpath(report, report, 0.25) == []

    def test_committed_live_snapshot_is_sane(self):
        with open(bench_gate.LIVE_BASELINE, encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["live"]["live_ok"] is True
        assert report["live"]["safety_ok"] is True
        assert report["target_height"] >= 20  # the PR's acceptance floor
        assert report["live"]["min_height"] >= report["target_height"]
        assert report["live"]["parties_reporting"] == report["cluster"]["n"]
        breakdown = report["live"]["latency_breakdown"]
        assert breakdown["spans_telescope"] is True
        assert breakdown["clock_uncertainty_s"] >= 0.0
        # Gating the committed snapshot against itself must pass.
        assert bench_gate.gate_live(report, report, 0.25) == []


class TestMain:
    def _write(self, path, data):
        path.write_text(json.dumps(data))
        return str(path)

    def test_main_passes_on_fresh_files(self, tmp_path, capsys):
        status = bench_gate.main([
            "--tolerance", "0.25",
            "--crypto-baseline",
            self._write(tmp_path / "cb.json", crypto_report({"schnorr": 10.0})),
            "--crypto-fresh",
            self._write(tmp_path / "cf.json", crypto_report({"schnorr": 9.0})),
            "--runner-baseline",
            self._write(tmp_path / "rb.json", runner_report(2.0)),
            "--runner-fresh",
            self._write(tmp_path / "rf.json", runner_report(1.8)),
            "--load-baseline",
            self._write(tmp_path / "lb.json", load_report()),
            "--load-fresh",
            self._write(tmp_path / "lf.json", load_report(gain=22.0)),
            "--shard-baseline",
            self._write(tmp_path / "sb.json", shard_report()),
            "--shard-fresh",
            self._write(tmp_path / "sf.json", shard_report(gain=3.8)),
            "--hotpath-baseline",
            self._write(tmp_path / "hb.json", hotpath_report()),
            "--hotpath-fresh",
            self._write(tmp_path / "hf.json", hotpath_report(best=2.9)),
        ])
        assert status == 0
        assert "passed" in capsys.readouterr().out

    def test_main_fails_on_shard_regression(self, tmp_path, capsys):
        status = bench_gate.main([
            "--shard-baseline",
            self._write(tmp_path / "sb.json", shard_report()),
            "--shard-fresh",
            self._write(tmp_path / "sf.json", shard_report(identical=False)),
            "--skip-crypto", "--skip-runner", "--skip-load", "--skip-hotpath",
            "--skip-live",
        ])
        assert status == 1
        assert "FAILED" in capsys.readouterr().out

    def test_main_fails_on_regression(self, tmp_path, capsys):
        status = bench_gate.main([
            "--crypto-baseline",
            self._write(tmp_path / "cb.json", crypto_report({"schnorr": 10.0})),
            "--crypto-fresh",
            self._write(tmp_path / "cf.json", crypto_report({"schnorr": 2.0})),
            "--skip-runner", "--skip-load", "--skip-shard", "--skip-hotpath",
            "--skip-live",
        ])
        assert status == 1
        assert "FAILED" in capsys.readouterr().out

    def test_main_fails_on_load_mismatch(self, tmp_path, capsys):
        status = bench_gate.main([
            "--load-baseline",
            self._write(tmp_path / "lb.json", load_report()),
            "--load-fresh",
            self._write(tmp_path / "lf.json", load_report(match=False)),
            "--skip-crypto", "--skip-runner", "--skip-shard", "--skip-hotpath",
            "--skip-live",
        ])
        assert status == 1
        assert "FAILED" in capsys.readouterr().out

    def test_main_fails_on_hotpath_mismatch(self, tmp_path, capsys):
        status = bench_gate.main([
            "--hotpath-baseline",
            self._write(tmp_path / "hb.json", hotpath_report()),
            "--hotpath-fresh",
            self._write(tmp_path / "hf.json", hotpath_report(identical=False)),
            "--skip-crypto", "--skip-runner", "--skip-load", "--skip-shard",
            "--skip-live",
        ])
        assert status == 1
        assert "FAILED" in capsys.readouterr().out

    def test_main_fails_on_live_safety_violation(self, tmp_path, capsys):
        status = bench_gate.main([
            "--live-baseline",
            self._write(tmp_path / "vb.json", live_report()),
            "--live-fresh",
            self._write(
                tmp_path / "vf.json",
                live_report(target=5, min_height=5, safety_ok=False),
            ),
            "--skip-crypto", "--skip-runner", "--skip-load", "--skip-shard",
            "--skip-hotpath",
        ])
        assert status == 1
        assert "FAILED" in capsys.readouterr().out

    def test_main_passes_on_live_files(self, tmp_path, capsys):
        status = bench_gate.main([
            "--live-baseline",
            self._write(tmp_path / "vb.json", live_report()),
            "--live-fresh",
            self._write(tmp_path / "vf.json", live_report(target=5, min_height=6)),
            "--skip-crypto", "--skip-runner", "--skip-load", "--skip-shard",
            "--skip-hotpath",
        ])
        assert status == 0
        assert "passed" in capsys.readouterr().out

    def test_update_refuses_quick_probe_live_snapshot(self, tmp_path, capsys):
        """--update must not let the 5-height CI probe replace the
        committed 20-height acceptance snapshot."""
        baseline = tmp_path / "vb.json"
        committed = live_report()
        self._write(baseline, committed)
        status = bench_gate.main([
            "--live-baseline", str(baseline),
            "--live-fresh",
            self._write(tmp_path / "vf.json", live_report(target=5, min_height=5)),
            "--skip-crypto", "--skip-runner", "--skip-load", "--skip-shard",
            "--skip-hotpath",
            "--update",
        ])
        assert status == 0
        assert json.loads(baseline.read_text()) == committed  # unchanged

    def test_update_rewrites_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "cb.json"
        self._write(baseline, crypto_report({"schnorr": 10.0}))
        fresh = crypto_report({"schnorr": 12.0})
        status = bench_gate.main([
            "--crypto-baseline", str(baseline),
            "--crypto-fresh", self._write(tmp_path / "cf.json", fresh),
            "--skip-runner", "--skip-load", "--skip-shard", "--skip-hotpath",
            "--skip-live",
            "--update",
        ])
        assert status == 0
        assert json.loads(baseline.read_text()) == fresh

    def test_update_refuses_nonsense_runner_snapshot(self, tmp_path, capsys):
        baseline = tmp_path / "rb.json"
        self._write(baseline, runner_report(2.0))
        bad = runner_report(0.683, cores=1)
        status = bench_gate.main([
            "--runner-baseline", str(baseline),
            "--runner-fresh", self._write(tmp_path / "rf.json", bad),
            "--skip-crypto", "--skip-load", "--skip-shard", "--skip-hotpath",
            "--skip-live",
            "--update",
        ])
        assert status == 1
        assert json.loads(baseline.read_text()) == runner_report(2.0)
