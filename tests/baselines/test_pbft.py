"""Tests for the PBFT baseline."""

from __future__ import annotations

import pytest

from repro.baselines import BaselineClusterConfig, PBFTParty, build_baseline_cluster
from repro.core.messages import Payload
from repro.sim.delays import FixedDelay


def pbft_cluster(n=4, t=1, delay=0.05, seed=1, corrupt=None, payload_source=None, **kwargs):
    config = BaselineClusterConfig(
        party_class=PBFTParty,
        n=n,
        t=t,
        seed=seed,
        delay_model=FixedDelay(delay),
        corrupt=corrupt or {},
        payload_source=payload_source,
        party_kwargs={"view_timeout": 2.0, **kwargs},
    )
    return build_baseline_cluster(config)


class TestHappyPath:
    def test_commits(self):
        c = pbft_cluster()
        c.start()
        assert c.run_until_all_committed_height(10, timeout=100)
        c.check_safety()

    def test_latency_three_delta(self):
        delta = 0.05
        c = pbft_cluster(delay=delta)
        c.start()
        c.run_until_all_committed_height(8, timeout=100)
        for latency in c.metrics.commit_latencies():
            assert latency == pytest.approx(3 * delta, rel=0.05)

    def test_stable_primary(self):
        """Without faults the primary never changes."""
        c = pbft_cluster()
        c.start()
        c.run_until_all_committed_height(10, timeout=100)
        assert c.metrics.counters.get("pbft-view-changes-installed", 0) == 0
        proposers = {b.proposer for b in c.party(2).output_log}
        assert proposers == {1}

    def test_payload_source_used(self):
        def source(party, height, chain):
            return Payload(commands=(b"h%d" % height,))

        c = pbft_cluster(payload_source=source)
        c.start()
        c.run_until_all_committed_height(5, timeout=100)
        commands = [cmd for b in c.party(2).output_log for cmd in b.payload.commands]
        assert commands[:3] == [b"h1", b"h2", b"h3"]

    def test_chain_links(self):
        c = pbft_cluster()
        c.start()
        c.run_until_all_committed_height(6, timeout=100)
        log = c.party(1).output_log
        for parent, child in zip(log, log[1:]):
            assert child.parent_digest == parent.digest

    def test_max_heights_stops(self):
        c = pbft_cluster(max_heights=4)
        c.start()
        c.run_for(30.0)
        assert all(p.k_max == 4 for p in c.parties)


class TestViewChange:
    def test_crashed_primary_replaced(self):
        c = pbft_cluster(corrupt={1: None})
        c.start()
        assert c.run_until_all_committed_height(5, timeout=200)
        c.check_safety()
        assert c.metrics.counters["pbft-view-changes-installed"] >= 1
        proposers = {b.proposer for b in c.party(2).output_log}
        assert 1 not in proposers

    def test_mid_run_crash_recovers(self):
        c = pbft_cluster(n=7, t=2)
        c.start()
        c.run_until_all_committed_height(3, timeout=100)
        c.network.crash(1)  # kill the primary mid-run
        c.run_for(60.0)
        # The crashed node is frozen; all others must keep committing.
        live = [p for p in c.parties if p.index != 1]
        assert min(p.k_max for p in live) >= 6
        logs = [p.committed_hashes for p in live]
        reference = max(logs, key=len)
        assert all(log == reference[: len(log)] for log in logs)

    def test_throughput_gap_during_view_change(self):
        """Nothing commits while the view change is pending — the PBFT
        failure mode ICC avoids (Section 1.1)."""
        c = pbft_cluster(corrupt={1: None})
        c.start()
        c.run_for(60.0)
        first_commit = min(r.time for r in c.metrics.commits)
        assert first_commit >= 2.0  # at least one view timeout elapsed
