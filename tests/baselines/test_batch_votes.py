"""Tests for the baselines' same-instant batched vote verification."""

from __future__ import annotations

import pytest

from repro.baselines import (
    BaselineClusterConfig,
    HotStuffParty,
    PBFTParty,
    TendermintParty,
    build_baseline_cluster,
)
from repro.crypto.keyring import generate_keyrings
from repro.obs import Tracer
from repro.sim.delays import FixedDelay


def _run(party_class, crypto_batch, seed=2, tracer=None, duration=20.0):
    config = BaselineClusterConfig(
        party_class=party_class,
        n=4, t=1, seed=seed,
        delay_model=FixedDelay(0.05),
        crypto_batch=crypto_batch,
        tracer=tracer,
    )
    cluster = build_baseline_cluster(config)
    cluster.start()
    cluster.run_for(duration)
    cluster.check_safety()
    return cluster


class TestBatchedVotesParity:
    @pytest.mark.parametrize("party_class", [PBFTParty, HotStuffParty, TendermintParty])
    def test_commits_identical_with_and_without_batching(self, party_class):
        on = _run(party_class, crypto_batch=True)
        off = _run(party_class, crypto_batch=False)
        assert on.party(1).committed_hashes == off.party(1).committed_hashes
        assert on.party(1).committed_hashes  # progress was actually made
        assert on.min_committed_height() == off.min_committed_height()

    def test_batches_actually_form(self):
        # Under FixedDelay all n broadcast votes arrive at the same instant,
        # so flushes should see multi-vote batches, traced per flush.
        tracer = Tracer()
        _run(PBFTParty, crypto_batch=True, tracer=tracer, duration=10.0)
        batch_events = [e for e in tracer.events() if e.kind == "crypto.batch_verify"]
        assert batch_events
        assert all(e.payload["scheme"] == "vote" for e in batch_events)
        assert max(e.payload["count"] for e in batch_events) > 1


class TestVoteHelpers:
    def _party(self, crypto_batch=True):
        config = BaselineClusterConfig(
            party_class=PBFTParty, n=4, t=1, seed=5,
            delay_model=FixedDelay(0.05), crypto_batch=crypto_batch,
        )
        return build_baseline_cluster(config)

    def test_votes_are_valid_matches_single(self):
        cluster = self._party()
        parties = cluster.parties
        votes = [
            parties[i].make_vote("pbft", "prepare", 1, 1, b"\x07" * 32)
            for i in range(4)
        ]
        # Forge one: vote claims voter 1 but carries voter 2's share.
        forged = votes[0].__class__(
            protocol="pbft", phase="prepare", view=1, height=1,
            digest=b"\x07" * 32, voter=1, share=votes[1].share,
        )
        mixed = votes + [forged]
        checker = parties[3]
        assert checker.votes_are_valid(mixed) == [
            checker.vote_is_valid(v) for v in mixed
        ]
        assert checker.votes_are_valid(mixed) == [True] * 4 + [False]

    def test_forged_vote_never_accepted(self):
        cluster = self._party()
        party = cluster.parties[0]
        rings = generate_keyrings(4, 1, seed=99, backend="fast")  # wrong keys
        forged = party.make_vote("pbft", "prepare", 1, 1, b"\x01" * 32).__class__(
            protocol="pbft", phase="prepare", view=1, height=1,
            digest=b"\x01" * 32, voter=2, share=rings[1].sign_notary_share(b"junk"),
        )
        accepted = []
        party._accept_vote = lambda vote: accepted.append(vote)
        party.enqueue_vote(forged)
        party.sim.run(until=party.sim.now + 0.001)  # run the flush event
        assert accepted == []

    def test_eager_mode_accepts_immediately(self):
        cluster = self._party(crypto_batch=False)
        parties = cluster.parties
        vote = parties[1].make_vote("pbft", "prepare", 1, 1, b"\x02" * 32)
        accepted = []
        parties[0]._accept_vote = lambda v: accepted.append(v)
        parties[0].enqueue_vote(vote)
        assert accepted == [vote]  # no deferral when batching is off
