"""Tests for the Tendermint baseline."""

from __future__ import annotations

import pytest

from repro.baselines import (
    BaselineClusterConfig,
    TendermintParty,
    build_baseline_cluster,
)
from repro.sim.delays import FixedDelay


def tendermint_cluster(
    n=4, t=1, delay=0.05, seed=1, corrupt=None, timeout_commit=0.5, **kwargs
):
    config = BaselineClusterConfig(
        party_class=TendermintParty,
        n=n,
        t=t,
        seed=seed,
        delay_model=FixedDelay(delay),
        corrupt=corrupt or {},
        party_kwargs={
            "timeout_propose": 2.0,
            "timeout_step": 2.0,
            "timeout_commit": timeout_commit,
            **kwargs,
        },
    )
    return build_baseline_cluster(config)


class TestHappyPath:
    def test_commits(self):
        c = tendermint_cluster()
        c.start()
        assert c.run_until_all_committed_height(8, timeout=100)
        c.check_safety()

    def test_decide_latency_three_delta(self):
        delta = 0.05
        c = tendermint_cluster(delay=delta)
        c.start()
        c.run_until_all_committed_height(6, timeout=100)
        for latency in c.metrics.commit_latencies():
            assert latency == pytest.approx(3 * delta, rel=0.05)

    def test_not_optimistically_responsive(self):
        """Height time ≈ timeout_commit + 3δ regardless of how small δ is."""
        delta = 0.01
        timeout_commit = 1.0
        c = tendermint_cluster(delay=delta, timeout_commit=timeout_commit)
        c.start()
        c.run_until_all_committed_height(5, timeout=100)
        records = c.metrics.commits_of(1)
        times = sorted(r.time for r in records)
        gaps = [b - a for a, b in zip(times, times[1:])]
        for gap in gaps:
            assert gap >= timeout_commit
            assert gap == pytest.approx(timeout_commit + 3 * delta, rel=0.1)

    def test_proposer_rotates(self):
        c = tendermint_cluster()
        c.start()
        c.run_until_all_committed_height(8, timeout=100)
        proposers = [b.proposer for b in c.party(1).output_log]
        assert len(set(proposers)) == 4


class TestFaults:
    def test_crashed_proposer_round_advances(self):
        c = tendermint_cluster(corrupt={1: None})
        c.start()
        assert c.run_until_all_committed_height(5, timeout=300)
        c.check_safety()
        proposers = {b.proposer for b in c.party(2).output_log}
        assert 1 not in proposers

    def test_two_crashes_in_seven(self):
        c = tendermint_cluster(n=7, t=2, corrupt={1: None, 4: None})
        c.start()
        assert c.run_until_all_committed_height(6, timeout=600)
        c.check_safety()

    def test_crashed_proposer_heights_cost_timeouts(self):
        c = tendermint_cluster(corrupt={1: None})
        c.start()
        c.run_until_all_committed_height(5, timeout=300)
        records = c.metrics.commits_of(2)
        times = sorted(r.time for r in records)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert max(gaps, default=0) >= 2.0  # nil-round timeouts


class TestLocking:
    def test_locked_value_repropose(self):
        """After a quorum of prevotes a validator locks; the next round's
        proposer (possibly another party) must re-propose the locked batch,
        so no two different batches can commit at one height."""
        c = tendermint_cluster(n=4, t=1)
        c.start()
        c.run_until_all_committed_height(6, timeout=100)
        by_height: dict[int, set[bytes]] = {}
        for p in c.honest_parties:
            for b in p.output_log:
                by_height.setdefault(b.height, set()).add(b.digest)
        assert all(len(digests) == 1 for digests in by_height.values())
