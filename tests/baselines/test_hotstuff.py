"""Tests for the chained-HotStuff baseline."""

from __future__ import annotations

import pytest

from repro.baselines import BaselineClusterConfig, HotStuffParty, build_baseline_cluster
from repro.sim.delays import FixedDelay


def hotstuff_cluster(n=4, t=1, delay=0.05, seed=1, corrupt=None, **kwargs):
    config = BaselineClusterConfig(
        party_class=HotStuffParty,
        n=n,
        t=t,
        seed=seed,
        delay_model=FixedDelay(delay),
        corrupt=corrupt or {},
        party_kwargs={"base_timeout": 2.0, **kwargs},
    )
    return build_baseline_cluster(config)


class TestHappyPath:
    def test_commits(self):
        c = hotstuff_cluster()
        c.start()
        assert c.run_until_all_committed_height(10, timeout=100)
        c.check_safety()

    def test_throughput_two_delta(self):
        """Chained operation: one batch per view, one view per 2δ."""
        delta = 0.05
        c = hotstuff_cluster(delay=delta)
        c.start()
        c.run_until_all_committed_height(15, timeout=100)
        records = c.metrics.commits_of(1)
        times = sorted(r.time for r in records)
        gaps = [b - a for a, b in zip(times[3:], times[4:])]
        # Individual gaps jitter by ±δ (the observer is itself the leader
        # every n-th view and sees that proposal with zero self-delay), but
        # the steady-state average is one batch per 2δ.
        assert sum(gaps) / len(gaps) == pytest.approx(2 * delta, rel=0.1)

    def test_latency_about_six_delta(self):
        """Three-chain commit: ≈ 6δ from proposal to commit."""
        delta = 0.05
        c = hotstuff_cluster(delay=delta)
        c.start()
        c.run_until_all_committed_height(15, timeout=100)
        latencies = c.metrics.commit_latencies()
        steady = latencies[len(latencies) // 2 :]
        for latency in steady:
            assert 5.5 * delta <= latency <= 7.5 * delta

    def test_leader_rotates_every_view(self):
        c = hotstuff_cluster()
        c.start()
        c.run_until_all_committed_height(8, timeout=100)
        proposers = [b.proposer for b in c.party(1).output_log]
        assert len(set(proposers)) == 4  # all parties led some view

    def test_chain_links(self):
        c = hotstuff_cluster()
        c.start()
        c.run_until_all_committed_height(6, timeout=100)
        log = c.party(1).output_log
        for parent, child in zip(log, log[1:]):
            assert child.parent_digest == parent.digest
            assert child.height == parent.height + 1


class TestPacemaker:
    def test_crashed_leader_skipped_by_timeout(self):
        c = hotstuff_cluster(corrupt={2: None})
        c.start()
        assert c.run_until_all_committed_height(6, timeout=300)
        c.check_safety()
        assert c.metrics.counters["hotstuff-timeouts"] >= 1

    def test_two_crashes_in_seven(self):
        c = hotstuff_cluster(n=7, t=2, corrupt={2: None, 5: None})
        c.start()
        assert c.run_until_all_committed_height(8, timeout=600)
        c.check_safety()

    def test_silence_costs_whole_views(self):
        """Every crashed-leader view stalls for a full timeout — HotStuff
        pays O(timeout) per faulty leader, unlike ICC's Δntry fallback."""
        c = hotstuff_cluster(corrupt={2: None})
        c.start()
        c.run_until_all_committed_height(6, timeout=300)
        records = c.metrics.commits_of(1)
        times = sorted(r.time for r in records)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert max(gaps, default=0) >= 2.0  # at least one full timeout stall
