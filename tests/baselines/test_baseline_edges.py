"""Edge-case tests for the baselines: equivocation, orphans, nil rounds."""

from __future__ import annotations

import pytest

from repro.baselines import (
    BaselineClusterConfig,
    HotStuffParty,
    PBFTParty,
    TendermintParty,
    build_baseline_cluster,
)
from repro.baselines.common import Batch, GENESIS_DIGEST
from repro.baselines.pbft import PrePrepare
from repro.core.messages import Payload
from repro.sim.delays import FixedDelay, UniformDelay


class TestPBFTEdges:
    def test_equivocating_preprepare_first_wins(self):
        """A primary pre-preparing two batches for one slot cannot split
        replicas: each accepts whichever arrived first and ignores the
        other; safety (agreement on one digest per height) holds."""

        class EquivocatingPrimary(PBFTParty):
            def _propose_next(self):
                if self._done():
                    return
                height = self.k_max + 1
                if (self.view, height) in self._accepted:
                    return
                parent = self.output_log[-1].digest if self.output_log else GENESIS_DIGEST
                for tag in (b"twin-a", b"twin-b"):
                    batch = Batch(
                        height=height,
                        proposer=self.index,
                        parent_digest=parent,
                        payload=Payload(commands=(tag,)),
                    )
                    self.metrics.proposed_at.setdefault(batch.digest, self.sim.now)
                    half = self.n // 2
                    for receiver in range(1, self.n + 1):
                        chosen = tag == b"twin-a" if receiver <= half else tag == b"twin-b"
                        if chosen:
                            self._send(receiver, PrePrepare(view=self.view, batch=batch))

        config = BaselineClusterConfig(
            party_class=PBFTParty,
            n=4, t=1, seed=1, delay_model=FixedDelay(0.05),
            corrupt={1: EquivocatingPrimary},
            party_kwargs=dict(view_timeout=2.0),
        )
        cluster = build_baseline_cluster(config)
        cluster.start()
        cluster.run_for(30.0)
        # No two honest replicas commit different batches at one height.
        by_height: dict[int, set[bytes]] = {}
        for party in cluster.honest_parties:
            for batch in party.output_log:
                by_height.setdefault(batch.height, set()).add(batch.digest)
        assert all(len(d) == 1 for d in by_height.values())

    def test_view_change_carries_prepared_batch(self):
        """A batch prepared (but not committed) before the view change is
        re-proposed by the new primary, not lost."""
        config = BaselineClusterConfig(
            party_class=PBFTParty,
            n=4, t=1, seed=2, delay_model=FixedDelay(0.05),
            party_kwargs=dict(view_timeout=1.5),
        )
        cluster = build_baseline_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_height(2, timeout=60)
        # Crash the primary right before it would commit height 3.
        cluster.network.crash(1)
        cluster.run_for(30.0)
        live = [p for p in cluster.parties if p.index != 1]
        assert min(p.k_max for p in live) >= 4


class TestHotStuffEdges:
    def test_orphan_proposals_buffered(self):
        """Proposals arriving before their parents are held, not dropped."""
        config = BaselineClusterConfig(
            party_class=HotStuffParty,
            n=4, t=1, seed=3,
            delay_model=UniformDelay(0.01, 0.2),  # heavy reordering
            party_kwargs=dict(base_timeout=3.0),
        )
        cluster = build_baseline_cluster(config)
        cluster.start()
        assert cluster.run_until_all_committed_height(10, timeout=300)
        cluster.check_safety()

    def test_locked_qc_advances(self):
        config = BaselineClusterConfig(
            party_class=HotStuffParty,
            n=4, t=1, seed=4, delay_model=FixedDelay(0.05),
            party_kwargs=dict(base_timeout=3.0),
        )
        cluster = build_baseline_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_height(8, timeout=100)
        assert all(p.locked_qc.view > 0 for p in cluster.parties)

    def test_vote_relay_recovers_crashed_successor(self):
        """Votes swallowed by a crashed next-leader are recovered from the
        NewView messages (the LibraBFT-style last-vote relay)."""
        config = BaselineClusterConfig(
            party_class=HotStuffParty,
            n=4, t=1, seed=5, delay_model=FixedDelay(0.05),
            corrupt={2: None},
            party_kwargs=dict(base_timeout=1.5),
        )
        cluster = build_baseline_cluster(config)
        cluster.start()
        assert cluster.run_until_all_committed_height(5, timeout=300)
        cluster.check_safety()


class TestTendermintEdges:
    def test_nil_round_then_progress(self):
        """A crashed proposer's round ends in nil precommits; the next
        round (new proposer) decides."""
        config = BaselineClusterConfig(
            party_class=TendermintParty,
            n=4, t=1, seed=6, delay_model=FixedDelay(0.05),
            corrupt={1: None},
            party_kwargs=dict(timeout_propose=1.0, timeout_step=1.0, timeout_commit=0.2),
        )
        cluster = build_baseline_cluster(config)
        cluster.start()
        assert cluster.run_until_all_committed_height(4, timeout=300)
        cluster.check_safety()
        # Height 4's proposer rotation means party 1 was proposer at least
        # once; those heights took the nil-round detour.
        assert cluster.sim.now > 2.0

    def test_round_number_grows_under_repeated_failure(self):
        """With the proposer crashed, replicas walk rounds r=1,2,... at
        the same height until a live proposer's turn."""
        config = BaselineClusterConfig(
            party_class=TendermintParty,
            n=4, t=1, seed=7, delay_model=FixedDelay(0.05),
            corrupt={1: None},
            party_kwargs=dict(timeout_propose=0.5, timeout_step=0.5, timeout_commit=0.1),
        )
        cluster = build_baseline_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_height(6, timeout=300)
        cluster.check_safety()
