"""Tests for the hot-path profile harness and its bench-gate leg.

The harness (``repro.experiments.profile_hotpath``) feeds the committed
``BENCH_hotpath.json`` snapshot; these tests run its quick variant and
check the report shape, the correctness bit, and the ``gate_hotpath``
rules in ``tools/bench_gate.py``.
"""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

from repro.experiments import profile_hotpath

_SPEC = importlib.util.spec_from_file_location(
    "bench_gate",
    os.path.join(os.path.dirname(__file__), "..", "..", "tools", "bench_gate.py"),
)
bench_gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_gate)


@pytest.fixture(scope="module")
def report():
    """One quick harness run shared by the shape/identity tests.

    The test group profile keeps the crypto leg cheap; the identity
    checks inside always run the full backend/queue/flush matrix.
    """
    return profile_hotpath.run_profile(
        profile="test", batch_size=8, min_seconds=0.02, seed=0
    )


class TestRunProfile:
    def test_report_shape(self, report):
        assert {"pure", "window", "gmpy2"} <= set(report["backends"])
        assert report["backends"]["pure"]["speedup"] == 1.0
        assert report["best_backend"] in report["backends"]
        queue = report["event_queue"]
        assert queue["heap_ops_per_sec"] > 0
        assert queue["calendar_ops_per_sec"] > 0
        assert queue["speedup"] == pytest.approx(
            queue["calendar_ops_per_sec"] / queue["heap_ops_per_sec"], rel=0.01
        )
        assert {"within_height", "across_heights"} <= set(report["pool"])

    def test_unavailable_backends_marked_skipped(self, report):
        if importlib.util.find_spec("gmpy2") is not None:
            pytest.skip("gmpy2 installed in this environment")
        assert report["backends"]["gmpy2"] == "skipped"

    def test_results_identical(self, report):
        assert report["results_identical"] is True

    def test_cross_height_flushing_saves_verifications(self, report):
        pool = report["pool"]
        assert (
            pool["across_heights"]["shares_verified"]
            <= pool["within_height"]["shares_verified"]
        )
        assert pool["within_height"]["flushes"] > 0

    def test_queue_workload_identical_across_queues(self):
        from repro.sim.events import CalendarEventQueue, HeapEventQueue

        heap = profile_hotpath._queue_workload(HeapEventQueue, 2000, seed=5)
        cal = profile_hotpath._queue_workload(CalendarEventQueue, 2000, seed=5)
        assert heap == cal
        assert heap == sorted(heap)

    def test_main_json_and_check(self, tmp_path):
        path = tmp_path / "hotpath.json"
        status = profile_hotpath.main(
            ["--quick", "--profile", "test", "--batch-size", "8",
             "--json", str(path), "--check"]
        )
        assert status == 0
        written = json.loads(path.read_text())
        assert written["results_identical"] is True


def hotpath_report(best=3.0, queue=1.2, identical=True) -> dict:
    return {
        "benchmark": "hot-path profile",
        "backends": {
            "pure": {"ops_per_sec": 1000.0, "speedup": 1.0},
            "window": {"ops_per_sec": 1000.0 * best, "speedup": best},
            "gmpy2": "skipped",
        },
        "best_backend": "window",
        "best_speedup": best,
        "event_queue": {
            "heap_ops_per_sec": 100000.0,
            "calendar_ops_per_sec": 100000.0 * queue,
            "speedup": queue,
        },
        "results_identical": identical,
    }


class TestGateHotpath:
    def test_identical_snapshots_pass(self):
        report = hotpath_report()
        assert bench_gate.gate_hotpath(report, report, 0.25) == []

    def test_speedup_regression_fails(self):
        failures = bench_gate.gate_hotpath(
            hotpath_report(best=4.0), hotpath_report(best=2.5), 0.25
        )
        assert any("best_speedup" in f for f in failures)

    def test_queue_regression_fails(self):
        failures = bench_gate.gate_hotpath(
            hotpath_report(queue=1.5), hotpath_report(queue=1.05), 0.25
        )
        assert any("event_queue" in f for f in failures)

    def test_nonidentical_results_fail_either_side(self):
        good, bad = hotpath_report(), hotpath_report(identical=False)
        assert any(
            "results differ" in f
            for f in bench_gate.gate_hotpath(bad, good, 0.25)
        )
        assert any(
            "results differ" in f
            for f in bench_gate.gate_hotpath(good, bad, 0.25)
        )

    def test_committed_speedup_under_two_fails(self):
        failures = bench_gate.gate_hotpath(
            hotpath_report(best=1.8), hotpath_report(best=1.8), 0.25
        )
        assert any("< 2x" in f for f in failures)

    def test_fresh_speedup_under_one_fails(self):
        failures = bench_gate.gate_hotpath(
            hotpath_report(), hotpath_report(best=0.9, queue=0.8), 0.0
        )
        assert any("best backend" in f for f in failures)
        assert any("calendar event queue" in f for f in failures)

    def test_improvement_always_passes(self):
        assert (
            bench_gate.gate_hotpath(
                hotpath_report(best=2.5), hotpath_report(best=9.0), 0.25
            )
            == []
        )
