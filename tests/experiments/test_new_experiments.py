"""Smoke tests for the E10 and ablation experiment modules."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    ablate_epsilon,
    ablate_proposer_stagger,
)
from repro.experiments.intermittent import run as run_intermittent


class TestIntermittent:
    def test_throughput_constant_across_windows(self):
        result = run_intermittent(period=16.0, sync_len=4.0, duration=64.0, n=4)
        assert result.total_rounds_committed > 0
        per_window = [w.commits_in_window for w in result.windows]
        assert len(per_window) >= 3
        assert min(per_window) > 0.6 * max(per_window)

    def test_everything_eventually_commits(self):
        result = run_intermittent(period=16.0, sync_len=4.0, duration=64.0, n=4)
        assert result.total_rounds_committed >= result.total_rounds_grown - 3


class TestAblations:
    def test_epsilon_model(self):
        rows = ablate_epsilon(epsilons=(0.0, 0.3), rounds=8)
        for row in rows:
            assert row.metrics["round_time"] == pytest.approx(
                row.metrics["predicted"], rel=0.1
            )

    def test_stagger_effect(self):
        staggered, flooded = ablate_proposer_stagger(n=7, rounds=8)
        assert (
            flooded.metrics["proposals_per_round"]
            > 3 * staggered.metrics["proposals_per_round"]
        )
