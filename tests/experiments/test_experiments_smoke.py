"""Smoke tests for the experiment harness (small parameters).

The full experiment runs live in benchmarks/; these tests confirm every
experiment module executes end-to-end and produces sane shapes.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    comparison,
    dissemination,
    message_complexity,
    properties,
    responsiveness,
    robustness,
    round_complexity,
    table1,
    throughput_latency,
)


class TestThroughputLatency:
    def test_icc0_numbers(self):
        r = throughput_latency.run_one("ICC0", delta=0.05, n=4, rounds=10)
        assert r.round_time_in_delta == pytest.approx(2.0, rel=0.05)
        assert r.latency_in_delta == pytest.approx(3.0, rel=0.05)

    def test_icc2_numbers(self):
        # n=7 so the erasure threshold k = t+1 = 3 forces a real echo round
        # (with k <= 2 the dealer's send + own echo already reconstruct, and
        # ICC2 legitimately runs one δ faster than the paper's 3δ/4δ).
        r = throughput_latency.run_one("ICC2", delta=0.05, n=7, rounds=10)
        assert r.round_time_in_delta == pytest.approx(3.0, rel=0.05)
        assert r.latency_in_delta == pytest.approx(4.0, rel=0.05)


class TestMessageComplexity:
    def test_synchronous_quadratic(self):
        points = message_complexity.run_synchronous(ns=(4, 10), rounds=6)
        # msgs/n² stays flat while msgs/n³ halves: quadratic scaling.
        assert points[0].per_n2 == pytest.approx(points[1].per_n2, rel=0.15)
        assert points[1].per_n3 < points[0].per_n3

    def test_worst_case_cubic(self):
        points = message_complexity.run_worst_case(ns=(4, 10), rounds=4)
        # msgs/n² grows with n (super-quadratic) under the adversary.
        assert points[1].per_n2 > points[0].per_n2 * 1.5


class TestRoundComplexity:
    def test_constant_expected_gap(self):
        r = round_complexity.run_one(7, rounds=40)
        assert r.all_rounds_eventually_committed
        assert r.mean_gap <= r.expected_mean_gap + 0.5
        assert r.max_gap <= 8  # O(log n) tail at n=7


class TestRobustness:
    def test_icc_degrades_gracefully_pbft_collapses(self):
        results = {(r.protocol, r.scenario): r.blocks_per_second
                   for r in robustness.run(n=10, duration=40.0)}
        icc_retention = (
            results[("ICC0", "slow-leader attack")] / results[("ICC0", "fault-free")]
        )
        pbft_retention = (
            results[("PBFT", "slow-leader attack")] / results[("PBFT", "fault-free")]
        )
        assert icc_retention > 3 * pbft_retention
        assert results[("ICC0", "slow-leader attack")] > 0.5  # still live


class TestResponsiveness:
    def test_icc_tracks_delta_tendermint_does_not(self):
        r = responsiveness.run_point(delta=0.01, n=4, blocks=8)
        assert r.icc0_block_time == pytest.approx(0.02, rel=0.1)  # 2δ
        assert r.tendermint_block_time >= responsiveness.DELTA_BOUND * 0.9


class TestDissemination:
    def test_leader_bottleneck_ranking(self):
        size = 200_000
        icc0 = dissemination.run_one("ICC0", size, n=10, rounds=5)
        icc1 = dissemination.run_one("ICC1", size, n=10, rounds=5)
        icc2 = dissemination.run_one("ICC2", size, n=10, rounds=5)
        # ICC0's bottleneck ≈ (n-1)·S; ICC1 and ICC2 are far below it.
        assert icc0.max_in_s > 8
        assert icc1.max_in_s < icc0.max_in_s / 3
        assert icc2.max_in_s < icc0.max_in_s / 2


class TestComparison:
    def test_ordering_matches_paper(self):
        rows = {r.protocol: r for r in comparison.run(delta=0.05, n=4, blocks=15)}
        assert rows["ICC0"].block_time_in_delta == pytest.approx(2.0, rel=0.1)
        assert rows["PBFT"].block_time_in_delta == pytest.approx(3.0, rel=0.1)
        assert rows["HotStuff"].latency_in_delta > rows["ICC0"].latency_in_delta
        assert rows["Tendermint"].block_time_in_delta > 10


class TestProperties:
    def test_sweeps_pass(self):
        verdicts = properties.run(trials=3)
        assert all(v.ok for v in verdicts)


class TestTable1:
    def test_small_subnet_cell(self):
        cell = table1.run_cell(13, "without load", duration=30.0)
        assert 0.8 <= cell.blocks_per_second <= 1.5  # paper: 1.09

    def test_failure_cell_slower(self):
        loaded = table1.run_cell(13, "with load", duration=30.0)
        failed = table1.run_cell(13, "load + failures", duration=30.0)
        assert failed.blocks_per_second < loaded.blocks_per_second * 0.75
