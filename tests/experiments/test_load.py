"""Load experiment: serial==parallel determinism, bench report, CLI."""

from __future__ import annotations

import json

from repro.experiments import load, runner


def _tiny_suite():
    return load.specs(ns=(4,), loads=(40.0, 80.0), duration=1.5, seed=2,
                      batch_max=32)


def test_specs_labels_and_kinds():
    suite = _tiny_suite()
    assert [s.kind for s in suite] == ["load.run_point"] * 2
    assert [s.label for s in suite] == ["load-n4-r40", "load-n4-r80"]


def test_serial_equals_parallel():
    """`repro load --jobs N` is bit-identical to the serial sweep: every
    LoadPoint field, including the committed-set digest, matches."""
    serial = runner.execute(_tiny_suite(), jobs=1)
    parallel = runner.execute(_tiny_suite(), jobs=2)
    assert serial == parallel
    assert all(point.digest for point in serial)


def test_run_point_accounts_for_every_request():
    point = load.run_point(n=4, offered=60.0, duration=1.5, seed=3)
    assert point.submitted > 0
    assert point.committed == point.submitted  # below saturation: no loss
    assert point.rejected == 0
    assert point.auth_invalid == 0
    assert point.goodput > 0
    assert point.mean_latency > 0
    assert point.p99_latency >= point.mean_latency


def test_saturation_sheds_load_not_safety():
    """Far beyond capacity the queue cap sheds requests; consensus still
    commits a prefix and the run stays safe (run_point check_safety's)."""
    point = load.run_point(
        n=4, offered=5000.0, duration=1.0, seed=4, queue_cap=200,
        batch_max=64,
    )
    assert point.rejected > 0
    assert point.committed < point.submitted + point.rejected
    assert point.committed > 0


def test_bench_report_structure_and_quick_determinism():
    report = load.bench(seed=0, min_seconds=0.02)
    assert report["request_sets_match"] is True
    assert report["sim"]["batching_gain"] > 1.0
    assert report["auth"]["speedup"] > 0
    # The sim leg is simulated time: bit-identical on every run/machine.
    again = load.bench(seed=0, min_seconds=0.02)
    assert again["sim"] == report["sim"]


def test_tabulate_includes_every_point(capsys):
    suite = load.specs(ns=(4,), loads=(40.0,), duration=1.0, seed=5)
    points = [load.run_point(n=4, offered=40.0, duration=1.0, seed=5)]
    assert load.tabulate(suite, points) == points
    out = capsys.readouterr().out
    assert "goodput" in out and "40/s" in out


def test_cli_bench_quick_check(tmp_path, capsys):
    out = tmp_path / "bench.json"
    status = load.main(
        ["--bench", "--quick", "--check", "--seed", "0", "--json", str(out)]
    )
    assert status == 0
    report = json.loads(out.read_text())
    assert report["request_sets_match"] is True
    assert "batching gain" in capsys.readouterr().out


def test_cli_tiny_sweep(capsys):
    status = load.main([
        "--ns", "4", "--loads", "50", "--duration", "1.0", "--seed", "6",
        "--jobs", "1",
    ])
    assert status == 0
    out = capsys.readouterr().out
    assert "goodput" in out
    assert "50/s" in out
