"""End-to-end tests for ``python -m repro report`` (run_report)."""

from __future__ import annotations

import json

from repro.__main__ import main
from repro.experiments import run_report
from repro.obs import Meter


class TestReportQuick:
    def test_quick_report_writes_consistent_markdown(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        trace_dir = tmp_path / "traces"
        main([
            "report", str(output), "--quick", "--trace-dir", str(trace_dir),
        ])
        assert "wrote" in capsys.readouterr().out
        text = output.read_text()
        # Section presence.
        assert "# Run report" in text
        assert "## Critical paths" in text
        assert "## Message complexity vs theory" in text
        assert "## Metrics" in text
        assert "## Trace health" in text
        # The telescoping consistency check must pass (not just render).
        assert "OK" in text
        assert "VIOLATED" not in text
        # Metric names from the registry surface in the tables.
        assert "`net.messages`" in text
        assert "`icc.blocks.committed`" in text
        # Theory bounds table reports within-worst-case.
        assert "**no**" not in text
        # Artifacts persist in the trace dir for --load.
        assert (trace_dir / "metrics.json").exists()
        assert (trace_dir / "results.json").exists()
        assert any(
            name.name.endswith(".jsonl") for name in trace_dir.iterdir()
        )

    def test_load_mode_rerenders_without_running(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        trace_dir = tmp_path / "traces"
        main([
            "report", str(output), "--quick", "--trace-dir", str(trace_dir),
        ])
        first = output.read_text()
        output2 = tmp_path / "reloaded.md"
        main([
            "report", str(output2), "--quick", "--load",
            "--trace-dir", str(trace_dir),
        ])
        capsys.readouterr()
        reloaded = output2.read_text()
        # Same critical-path table either way (the traces are the source).
        def section(text, title):
            start = text.index(title)
            return text[start : text.index("##", start + 1)]

        assert section(first, "## Critical paths") == section(
            reloaded, "## Critical paths"
        )
        assert section(first, "## Metrics") == section(reloaded, "## Metrics")

    def test_html_output_is_selfcontained(self, tmp_path, capsys):
        output = tmp_path / "report.html"
        main(["report", str(output), "--quick", "--html"])
        capsys.readouterr()
        html = output.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<table>" in html
        assert "Critical paths" in html
        assert "</body></html>" in html


class TestReportInternals:
    def test_merged_metrics_json_is_valid_meter(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        main([
            "report", str(tmp_path / "r.md"), "--quick",
            "--trace-dir", str(trace_dir),
        ])
        capsys.readouterr()
        meter = Meter.read_json(str(trace_dir / "metrics.json"))
        assert meter.counter_value("net.messages") > 0
        results = json.loads((trace_dir / "results.json").read_text())
        assert results[0]["rounds_committed"] >= 1

    def test_executor_returns_picklable_row(self):
        row = run_report.run_traced(
            protocol="icc0", n=4, t=1, delta=0.05, rounds=3, seed=1
        )
        assert row["rounds_committed"] >= 3
        assert row["messages_sent"] > 0
        restored = Meter.from_dict(row["meter"])
        assert restored.counter_value("icc.blocks.committed") > 0
        # Must survive the multiprocessing boundary.
        import pickle

        assert pickle.loads(pickle.dumps(row)) == row

    def test_to_html_escapes_and_converts(self):
        markdown = "# T\n\n| a | b |\n| --- | --- |\n| 1 | `x<y` |\n"
        html = run_report.to_html(markdown)
        assert "<h1>T</h1>" in html
        assert "<code>x&lt;y</code>" in html
