"""Tests for experiment-harness helpers (tables, stats, config factory)."""

from __future__ import annotations

import pytest

from repro.experiments.common import make_icc_config, mean, percentile, print_table
from repro.experiments.report import _md_table


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_is_nan(self):
        import math

        assert math.isnan(mean([]))

    def test_percentile(self):
        values = list(range(100))
        assert percentile(values, 0.5) == 50
        assert percentile(values, 0.99) == 99

    def test_percentile_empty(self):
        import math

        assert math.isnan(percentile([], 0.5))


class TestPrinters:
    def test_print_table_alignment(self, capsys):
        print_table("demo", ["a", "long-header"], [(1, 2), (333, 4)])
        out = capsys.readouterr().out
        assert "demo" in out
        assert "long-header" in out
        assert "333" in out

    def test_print_table_empty_rows(self, capsys):
        print_table("empty", ["x"], [])
        assert "empty" in capsys.readouterr().out

    def test_md_table(self):
        text = _md_table(["a", "b"], [(1, 2)])
        assert text.splitlines() == ["| a | b |", "|---|---|", "| 1 | 2 |"]


class TestConfigFactory:
    def test_icc1_gets_overlay(self):
        from repro.sim.delays import FixedDelay

        config = make_icc_config(
            "ICC1", n=7, t=2, delta_bound=0.3, delay_model=FixedDelay(0.05)
        )
        assert "overlay" in config.extra_party_kwargs
        assert len(config.extra_party_kwargs["overlay"]) == 7

    def test_icc0_gets_no_extras(self):
        from repro.sim.delays import FixedDelay

        config = make_icc_config(
            "ICC0", n=4, t=1, delta_bound=0.3, delay_model=FixedDelay(0.05)
        )
        assert config.extra_party_kwargs == {}

    def test_unknown_protocol_rejected(self):
        from repro.sim.delays import FixedDelay

        with pytest.raises(ValueError):
            make_icc_config("ICC9", n=4, t=1, delta_bound=0.3, delay_model=FixedDelay(0.05))

    def test_case_insensitive(self):
        from repro.sim.delays import FixedDelay

        config = make_icc_config("icc2", n=4, t=1, delta_bound=0.3, delay_model=FixedDelay(0.05))
        assert config.party_class.protocol_name == "ICC2"
