"""The parallel experiment runner: serial/parallel equivalence and CLI.

The load-bearing guarantee is *bit-identical results at any job count*:
every RunSpec carries its own seed, so fanning runs across a pool must
change nothing observable — result objects, printed tables, or per-run
trace files.  These tests run a trimmed suite both ways and compare all
three.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import intermittent, robustness, runner, run_all, throughput_latency

#: Trimmed but heterogeneous suite: three executor kinds, ~seconds total.
def _suite() -> list[runner.RunSpec]:
    return (
        throughput_latency.specs(deltas=(0.05,), protocols=("ICC0", "ICC2"), rounds=8)
        + robustness.specs(n=7, duration=20.0)
        + intermittent.specs(duration=40.0)
    )


def test_spec_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown run kind"):
        runner.spec("x", "no.such.executor")


def test_run_spec_matches_direct_call():
    spec = throughput_latency.specs(deltas=(0.1,), protocols=("ICC0",), rounds=6)[0]
    assert runner.run_spec(spec) == throughput_latency.run_one("ICC0", 0.1, n=7, rounds=6)


def test_execute_rejects_bad_jobs():
    with pytest.raises(ValueError, match="jobs must be >= 1"):
        runner.execute(_suite(), jobs=0)


def test_execute_empty_suite():
    assert runner.execute([], jobs=4) == []


def test_serial_and_parallel_results_identical():
    specs = _suite()
    serial = runner.execute(specs, jobs=1)
    parallel = runner.execute(specs, jobs=3)
    assert serial == parallel


def test_serial_and_parallel_tables_byte_identical(capsys):
    specs = _suite()[:2]
    tl_specs = throughput_latency.specs(deltas=(0.05,), protocols=("ICC0", "ICC2"), rounds=8)

    throughput_latency.tabulate(tl_specs, runner.execute(tl_specs, jobs=1))
    serial_out = capsys.readouterr().out
    throughput_latency.tabulate(tl_specs, runner.execute(tl_specs, jobs=2))
    parallel_out = capsys.readouterr().out
    assert serial_out == parallel_out
    assert "E1/E2" in serial_out


def test_trace_files_deterministic_across_job_counts(tmp_path):
    specs = throughput_latency.specs(deltas=(0.05,), protocols=("ICC0", "ICC1"), rounds=6)
    d1 = tmp_path / "serial"
    d2 = tmp_path / "parallel"
    runner.execute(specs, jobs=1, trace_dir=str(d1))
    runner.execute(specs, jobs=2, trace_dir=str(d2))

    runs1 = sorted(p.name for p in d1.iterdir() if p.name != "runner.jsonl")
    runs2 = sorted(p.name for p in d2.iterdir() if p.name != "runner.jsonl")
    # One file per run, named by spec index — independent of arrival order.
    assert runs1 == runs2 == ["0000-icc0-n7-seed1.jsonl", "0001-icc1-n7-seed1.jsonl"]
    for name in runs1:
        assert (d1 / name).read_bytes() == (d2 / name).read_bytes()


def test_runner_jsonl_covers_every_spec(tmp_path):
    specs = _suite()
    runner.execute(specs, jobs=2, trace_dir=str(tmp_path))
    events = [json.loads(line) for line in (tmp_path / "runner.jsonl").read_text().splitlines()]
    starts = {e["payload"]["run"] for e in events if e["kind"] == "runner.run_start"}
    ends = {e["payload"]["run"] for e in events if e["kind"] == "runner.run_end"}
    assert starts == ends == set(range(len(specs)))
    for event in events:
        assert event["payload"]["jobs"] == 2
        if event["kind"] == "runner.run_end":
            assert event["payload"]["wall_ms"] >= 0


# -- run_all argument parsing (the --trace IndexError regression) -------------


def test_run_all_trace_without_value_exits_cleanly(capsys):
    # Used to raise IndexError (args[args.index("--trace") + 1]).
    with pytest.raises(SystemExit) as exc:
        run_all.main(["--trace"])
    assert exc.value.code == 2
    assert "--trace" in capsys.readouterr().err


def test_run_all_rejects_unknown_flag(capsys):
    with pytest.raises(SystemExit) as exc:
        run_all.main(["--no-such-flag"])
    assert exc.value.code == 2
    assert "no-such-flag" in capsys.readouterr().err


def test_run_all_rejects_non_integer_jobs(capsys):
    with pytest.raises(SystemExit) as exc:
        run_all.main(["--jobs", "many"])
    assert exc.value.code == 2


def test_run_all_prints_byte_identical_tables_at_any_job_count(capsys, monkeypatch):
    """End-to-end through run_all.main(): argparse -> execute -> tabulate.

    The full --quick suite takes minutes, so the runner-enumerated part
    is trimmed to two cheap experiments; the code path is the real one.
    """
    from repro.experiments import comparison

    def trimmed_suite(quick):
        assert quick
        return [
            (run_all.table1, []),
            (
                throughput_latency,
                throughput_latency.specs(deltas=(0.05,), protocols=("ICC0",), rounds=8),
            ),
            (run_all.robustness, []),
            (comparison, comparison.specs(blocks=10)),
            (run_all.intermittent, []),
            (run_all.ablations, []),
        ]

    monkeypatch.setattr(run_all, "suite", trimmed_suite)
    for module in ("message_complexity", "round_complexity", "responsiveness",
                   "dissemination", "properties", "bandwidth"):
        monkeypatch.setattr(getattr(run_all, module), "main", lambda: None)
    for module, printer in (
        ("table1", run_all.table1), ("robustness", run_all.robustness),
        ("intermittent", run_all.intermittent), ("ablations", run_all.ablations),
    ):
        monkeypatch.setattr(printer, "tabulate", lambda specs, results: None)

    run_all.main(["--quick", "--jobs", "1"])
    serial_out = capsys.readouterr().out
    run_all.main(["--quick", "--jobs", "2"])
    parallel_out = capsys.readouterr().out
    assert serial_out == parallel_out
    assert "E1/E2" in serial_out and "E9" in serial_out


def test_run_all_suite_enumerates_all_ported_experiments():
    groups = run_all.suite(quick=True)
    experiments = [module.__name__.rsplit(".", 1)[-1] for module, _ in groups]
    assert experiments == [
        "table1",
        "throughput_latency",
        "robustness",
        "comparison",
        "intermittent",
        "ablations",
    ]
    for _, specs in groups:
        assert specs, "every ported experiment contributes at least one spec"
        for spec in specs:
            assert spec.kind in runner.EXECUTORS
