"""Benchmarks E10 (intermittent synchrony) and A1–A4 (ablations)."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    ablate_epsilon,
    ablate_gossip_degree,
    ablate_proposer_stagger,
    ablate_rbc_fill_delay,
)
from repro.experiments.intermittent import run as run_intermittent


class TestE10IntermittentSynchrony:
    def test_constant_throughput(self, once):
        result = once(run_intermittent, period=20.0, sync_len=5.0, duration=120.0)
        # The tree grows and *commits* at a steady rate despite 75% of the
        # time being asynchronous ("the system will maintain a constant
        # throughput", Section 3.3).
        assert result.total_rounds_committed >= result.total_rounds_grown - 4
        per_window = [w.commits_in_window for w in result.windows]
        assert min(per_window) > 0.7 * max(per_window)


class TestA1Epsilon:
    def test_governor_paces_rounds(self, once):
        rows = once(ablate_epsilon)
        for row in rows:
            assert row.metrics["round_time"] == pytest.approx(
                row.metrics["predicted"], rel=0.05
            )


class TestA2Stagger:
    def test_stagger_suppresses_proposal_flood(self, once):
        staggered, flooded = once(ablate_proposer_stagger)
        assert staggered.metrics["proposals_per_round"] < 1.5
        assert flooded.metrics["proposals_per_round"] > 8
        assert (
            flooded.metrics["block_bytes_per_round"]
            > 1.5 * staggered.metrics["block_bytes_per_round"]
        )


class TestA3GossipDegree:
    def test_degree_knee(self, once):
        rows = {int(r.value): r.metrics for r in once(ablate_gossip_degree)}
        # Sparse overlays pay latency; d>=3 converges.
        assert rows[2]["round_time"] > rows[4]["round_time"]
        # Leader egress stays a small multiple of S at every degree —
        # far below ICC0's (n-1)·S = 12·S.
        for metrics in rows.values():
            assert metrics["max_node_egress_per_round_in_s"] < 4


class TestA4FillDelay:
    def test_grace_period_removes_redundant_fills(self, once):
        rows = {r.value: r.metrics for r in once(ablate_rbc_fill_delay)}
        assert rows[0.0]["fill_bytes"] > 10 * max(1, rows[0.25]["fill_bytes"])
        # Progress unaffected.
        done = {v["rounds_done"] for v in rows.values()}
        assert len(done) == 1
