"""Benchmark E3 — message complexity (Section 1).

Paper: O(n²) expected per synchronous round; O(n³) worst case under an
adversarial scheduler.
"""

from __future__ import annotations

import pytest

from repro.experiments.message_complexity import run_synchronous, run_worst_case


class TestSynchronousQuadratic:
    def test_constant_per_n2(self, once):
        points = once(run_synchronous, ns=(4, 7, 13, 25, 40), rounds=10)
        ratios = [p.per_n2 for p in points]
        # messages/n² is flat across a 10x n range: clean O(n²).
        assert max(ratios) / min(ratios) < 1.25

    def test_absolute_constant_small(self, once):
        points = once(run_synchronous, ns=(13,), rounds=10)
        # Each party makes a small constant number of broadcasts per round.
        assert points[0].per_n2 < 12


class TestWorstCaseCubic:
    def test_per_n3_stabilizes(self, once):
        points = once(run_worst_case, ns=(4, 7, 10, 13), rounds=5)
        # messages/n³ converges (to ~2 + O(1/n)) while messages/n² grows
        # linearly in n: the adversary really extracts Θ(n³).
        per_n3 = [p.per_n3 for p in points]
        assert per_n3[-1] == pytest.approx(per_n3[-2], rel=0.15)
        per_n2 = [p.per_n2 for p in points]
        assert per_n2[-1] > per_n2[0] * 2

    def test_adversary_beats_synchronous(self, once):
        def both():
            sync = run_synchronous(ns=(10,), rounds=6)[0]
            worst = run_worst_case(ns=(10,), rounds=4)[0]
            return sync, worst

        sync, worst = once(both)
        assert worst.messages_per_round > sync.messages_per_round * 2
