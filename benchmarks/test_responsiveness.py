"""Benchmark E6 — optimistic responsiveness (Section 1).

Paper: ICC runs at network speed (2δ rounds) under honest leaders even
when Δbnd is set conservatively; Tendermint's rounds cost O(Δbnd)
regardless of the actual δ.
"""

from __future__ import annotations

import pytest

from repro.experiments.responsiveness import DELTA_BOUND, run_point


class TestResponsiveness:
    def test_icc_tracks_delta(self, once):
        def sweep():
            return [run_point(d, n=7, blocks=12) for d in (0.005, 0.05, 0.2)]

        results = once(sweep)
        for r in results:
            assert r.icc0_block_time == pytest.approx(2 * r.delta, rel=0.1)

    def test_tendermint_pinned_to_bound(self, once):
        def sweep():
            return [run_point(d, n=7, blocks=10) for d in (0.005, 0.05)]

        results = once(sweep)
        for r in results:
            assert r.tendermint_block_time >= DELTA_BOUND * 0.9

    def test_gap_widens_as_network_gets_faster(self, once):
        r = once(run_point, 0.005, n=7, blocks=10)
        # At δ = 5 ms and Δbnd = 1 s, ICC is ~100x faster per block.
        assert r.tendermint_block_time / r.icc0_block_time > 50
