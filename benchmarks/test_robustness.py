"""Benchmark E5 — robust consensus under the slow-leader attack of [15].

Paper (Section 1.1): PBFT-style protocols can be throttled to near-zero by
a primary that stays just under the view-change timeout; ICC degrades
gracefully because leadership rotates via the beacon every round and other
parties' proposals fill in after Δntry.
"""

from __future__ import annotations

from repro.experiments.robustness import run


class TestSlowLeaderAttack:
    def test_icc_retains_pbft_collapses(self, once):
        results = {
            (r.protocol, r.scenario): r.blocks_per_second
            for r in once(run, n=10, duration=90.0)
        }
        icc_clean = results[("ICC0", "fault-free")]
        icc_attacked = results[("ICC0", "slow-leader attack")]
        pbft_clean = results[("PBFT", "fault-free")]
        pbft_attacked = results[("PBFT", "slow-leader attack")]

        # PBFT runs at the attacker's pace (~1 batch per lag interval).
        assert pbft_attacked / pbft_clean < 0.10
        # ICC keeps a usable fraction of its throughput...
        assert icc_attacked / icc_clean > 0.15
        # ...and in absolute terms stays an order of magnitude ahead.
        assert icc_attacked > 4 * pbft_attacked
