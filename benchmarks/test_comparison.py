"""Benchmark E9 — the cross-protocol comparison table of Section 1.1.

Paper (in multiples of δ): ICC0/ICC1 2/3, ICC2 3/4, PBFT 3/3,
HotStuff 2/6, Tendermint O(Δbnd)/3.  One benchmarked run regenerates the
whole table; the assertions check every row.
"""

from __future__ import annotations

import pytest

from repro.experiments.comparison import run


class TestComparisonTable:
    def test_all_rows_match_paper(self, once):
        rows = {r.protocol: r for r in once(run, delta=0.05, n=7, blocks=25)}

        assert rows["ICC0"].block_time_in_delta == pytest.approx(2.0, rel=0.1)
        assert rows["ICC0"].latency_in_delta == pytest.approx(3.0, rel=0.1)

        assert rows["ICC1"].block_time_in_delta == pytest.approx(2.0, rel=0.1)
        assert rows["ICC1"].latency_in_delta == pytest.approx(3.0, rel=0.1)

        assert rows["ICC2"].block_time_in_delta == pytest.approx(3.0, rel=0.1)
        assert rows["ICC2"].latency_in_delta == pytest.approx(4.0, rel=0.1)

        assert rows["PBFT"].block_time_in_delta == pytest.approx(3.0, rel=0.1)
        assert rows["PBFT"].latency_in_delta == pytest.approx(3.0, rel=0.1)

        assert rows["HotStuff"].block_time_in_delta == pytest.approx(2.0, rel=0.1)
        assert 5.5 <= rows["HotStuff"].latency_in_delta <= 7.5

        # Tendermint is not optimistically responsive: block time is
        # dominated by its Δbnd-scale timeout_commit (20δ here).
        assert rows["Tendermint"].block_time_in_delta > 10
        assert rows["Tendermint"].latency_in_delta == pytest.approx(3.0, rel=0.1)

        # Headline ordering: ICC halves HotStuff's commit latency.
        assert rows["ICC0"].latency_in_delta < rows["HotStuff"].latency_in_delta / 1.8
