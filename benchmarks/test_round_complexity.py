"""Benchmark E4 — round complexity (Section 1).

Paper: rounds-until-commit is O(1) in expectation and O(log n) w.h.p. for
a static adversary, and eventually one block commits for *every* round.
"""

from __future__ import annotations

from repro.experiments.round_complexity import run_one


class TestExpectedConstant:
    def test_mean_gap_bounded_by_geometric(self, once):
        r = once(run_one, 13, rounds=100)
        # Mean commit-batch size ≤ n/(n-t) + slack: O(1) in expectation.
        assert r.mean_gap <= r.expected_mean_gap + 0.5

    def test_every_round_committed(self, once):
        r = once(run_one, 13, rounds=80)
        assert r.all_rounds_eventually_committed


class TestLogTail:
    def test_max_gap_logarithmic(self, once):
        def sweep():
            return [run_one(n, rounds=80) for n in (7, 13, 25)]

        results = once(sweep)
        import math

        for r in results:
            # Geometric tail: P(gap > c·log n) is negligible; over 80
            # rounds the max batch stays within ~4·log2(n).
            assert r.max_gap <= 4 * math.log2(r.n) + 2

    def test_gap_does_not_grow_with_n(self, once):
        def sweep():
            return [run_one(n, rounds=60) for n in (7, 25)]

        small, large = once(sweep)
        assert large.mean_gap < small.mean_gap + 1.0
