"""Benchmark T1 — regenerate Table 1 (block rate and sent traffic).

Paper numbers (5-minute window):

    13 nodes: 1.09 / 1.10 / 0.45 blocks/s;  1.64 / 4.72 / 4.39 Mb/s
    40 nodes: 0.41 / 0.41 / 0.16 blocks/s;  4.63 / 7.32 / 5.06 Mb/s

The benchmark uses a 60-second window (the steady state is reached within
seconds; EXPERIMENTS.md records a full 300 s run).  Block rates must land
near the paper's; traffic is consensus-only (see table1 module docstring)
so we assert the *scenario deltas* instead of absolutes.
"""

from __future__ import annotations

import pytest

from repro.experiments.table1 import run_cell


class TestSubnet13:
    def test_without_load(self, once):
        cell = once(run_cell, 13, "without load", duration=60.0)
        assert cell.blocks_per_second == pytest.approx(1.09, rel=0.25)

    def test_with_load(self, once):
        cell = once(run_cell, 13, "with load", duration=60.0)
        assert cell.blocks_per_second == pytest.approx(1.10, rel=0.25)
        # Load adds client + block traffic (paper: +3.1 Mb/s incl. overhead).
        assert cell.node_egress_mbps > 1.5

    def test_load_and_failures(self, once):
        cell = once(run_cell, 13, "load + failures", duration=60.0)
        assert cell.blocks_per_second == pytest.approx(0.45, rel=0.4)
        assert cell.blocks_per_second < 0.7  # clear degradation vs 1.10


class TestSubnet40:
    def test_without_load(self, once):
        cell = once(run_cell, 40, "without load", duration=60.0)
        assert cell.blocks_per_second == pytest.approx(0.41, rel=0.25)

    def test_with_load(self, once):
        cell = once(run_cell, 40, "with load", duration=60.0)
        assert cell.blocks_per_second == pytest.approx(0.41, rel=0.25)

    def test_load_and_failures(self, once):
        cell = once(run_cell, 40, "load + failures", duration=60.0)
        assert cell.blocks_per_second == pytest.approx(0.16, rel=0.5)
        assert cell.blocks_per_second < 0.3
