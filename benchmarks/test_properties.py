"""Benchmark E8 — protocol properties P1/P2/P3 under adversarial sweeps."""

from __future__ import annotations

from repro.experiments.properties import run_liveness_intermittent, run_safety_sweep


class TestProperties:
    def test_safety_sweep(self, once):
        verdict = once(run_safety_sweep, trials=8)
        assert verdict.ok

    def test_liveness_intermittent_synchrony(self, once):
        verdict = once(run_liveness_intermittent, trials=4)
        assert verdict.ok
