"""Benchmark E11 — the leader bottleneck as latency under finite uplinks."""

from __future__ import annotations

from repro.experiments.bandwidth import run


class TestE11Bottleneck:
    def test_gossip_and_rbc_beat_naive_broadcast(self, once):
        results = {r.protocol: r for r in once(run, block_bytes=500_000, uplink_mbps=50.0, n=13)}
        icc0 = results["ICC0"].round_time
        icc1 = results["ICC1"].round_time
        icc2 = results["ICC2"].round_time
        # The naive broadcast pays ~(n-1) serialized copies at the leader
        # plus another S per echoer; dissemination-aware variants don't.
        assert icc0 > 3 * icc1
        assert icc0 > 3 * icc2
        # And the winners stay within a small factor of the 1×S floor.
        floor = results["ICC1"].serialization_floor
        assert icc1 < 8 * floor
        assert icc2 < 8 * floor
