"""Benchmark E7 — block dissemination and the leader bottleneck.

Paper: ICC0's proposer sends (n-1)·S per block (the bottleneck of [35]);
ICC1's gossip caps the leader at degree·S; ICC2's erasure-coded reliable
broadcast gives *every* party O(S) per round (n/(t+1) ≈ 3 S).
"""

from __future__ import annotations

import pytest

from repro.experiments.dissemination import run_one

N = 13
S = 500_000


class TestLeaderBottleneck:
    def test_icc0_max_is_n_minus_1_s(self, once):
        r = once(run_one, "ICC0", S, n=N, rounds=6)
        assert r.max_in_s == pytest.approx(N - 1, rel=0.1)

    def test_icc1_max_bounded_by_degree(self, once):
        r = once(run_one, "ICC1", S, n=N, rounds=6)
        assert r.max_in_s < 5  # degree=4 overlay; far below n-1 = 12

    def test_icc2_max_is_3s(self, once):
        r = once(run_one, "ICC2", S, n=N, rounds=6)
        # Every party's per-round egress ≈ n/(t+1)·S ≈ 2.6·S (the dealer's
        # extra dispersal cost amortizes as leadership rotates).
        assert r.max_in_s == pytest.approx(N / 5, rel=0.25)

    def test_ranking(self, once):
        def sweep():
            return [run_one(p, S, n=N, rounds=6) for p in ("ICC0", "ICC1", "ICC2")]

        icc0, icc1, icc2 = once(sweep)
        assert icc0.max_in_s > icc2.max_in_s > icc1.max_in_s


class TestScaleInvariance:
    def test_expansion_flat_in_block_size(self, once):
        """Per-node cost is linear in S: the S-multiple is size-invariant."""

        def sweep():
            return [run_one("ICC2", size, n=N, rounds=5) for size in (50_000, 1_000_000)]

        small, large = once(sweep)
        assert small.max_in_s == pytest.approx(large.max_in_s, rel=0.2)
