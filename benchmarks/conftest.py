"""Benchmark-suite configuration.

Each experiment benchmark runs its (deterministic, seconds-long) simulation
exactly once via ``benchmark.pedantic`` — wall-clock variance across
repeats is meaningless for a deterministic discrete-event run, and the
assertions on the *results* are what reproduce the paper's numbers.
Micro-benchmarks (crypto, erasure coding, event loop) use the default
pytest-benchmark calibration.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return runner
