"""Micro-benchmarks: substrate hot paths.

These quantify the simulator's own costs (crypto, erasure coding, event
dispatch) — useful when sizing larger experiments, and a regression guard
on the substrate.
"""

from __future__ import annotations

import os
from random import Random

from repro.crypto import schnorr, threshold
from repro.crypto.api import verifiers_for
from repro.crypto.group import test_group as make_test_group
from repro.crypto.keyring import generate_keyrings
from repro.erasure.merkle import MerkleTree
from repro.erasure.reed_solomon import CodecParams, decode, encode
from repro.sim.simulator import Simulation


class TestCryptoMicro:
    def test_schnorr_sign(self, benchmark):
        group = make_test_group()
        rng = Random(1)
        keys = schnorr.keygen(group, rng)
        benchmark(lambda: schnorr.sign(group, keys.secret, b"message", rng))

    def test_schnorr_verify(self, benchmark):
        group = make_test_group()
        rng = Random(1)
        keys = schnorr.keygen(group, rng)
        sig = schnorr.sign(group, keys.secret, b"message", rng)
        verify = verifiers_for(group).schnorr.verify
        benchmark(lambda: verify(keys.public, b"message", sig))

    def test_threshold_share_sign(self, benchmark):
        group = make_test_group()
        rng = Random(1)
        pk, keys = threshold.keygen(group, threshold=5, n=13, rng=rng)
        benchmark(lambda: threshold.sign_share(pk, keys[0], b"beacon", rng))

    def test_threshold_combine(self, benchmark):
        group = make_test_group()
        rng = Random(1)
        pk, keys = threshold.keygen(group, threshold=5, n=13, rng=rng)
        shares = [threshold.sign_share(pk, k, b"beacon", rng) for k in keys[:5]]
        benchmark(lambda: threshold.combine(pk, b"beacon", shares))

    def test_fast_backend_notary_share(self, benchmark):
        rings = generate_keyrings(13, 4, backend="fast")
        benchmark(lambda: rings[0].sign_notary_share(b"message"))


class TestBatchVerifyMicro:
    """Single vs RLC-batch verification (see ``python -m repro bench``)."""

    BATCH = 32

    def _schnorr_items(self):
        from repro.crypto.api import verifiers_for

        group = make_test_group()
        rng = Random(1)
        items = []
        for i in range(self.BATCH):
            pair = schnorr.keygen(group, rng)
            message = b"micro/%d" % i
            items.append((pair.public, message, schnorr.sign(group, pair.secret, message, rng)))
        return group, verifiers_for(group), items

    def test_schnorr_verify_single_oracle(self, benchmark):
        from repro.crypto import fastpath

        group, _, items = self._schnorr_items()
        benchmark(lambda: [fastpath.verify_schnorr_single(group, *item) for item in items])

    def test_schnorr_verify_batch(self, benchmark):
        _, suite, items = self._schnorr_items()
        assert all(suite.schnorr.verify_batch(items))  # warm the tables
        benchmark(lambda: suite.schnorr.verify_batch(items))

    def test_threshold_share_verify_batch(self, benchmark):
        from repro.crypto.api import verifiers_for

        group = make_test_group()
        rng = Random(1)
        pk, keys = threshold.keygen(group, threshold=17, n=self.BATCH, rng=rng)
        items = [(pk, b"beacon", threshold.sign_share(pk, k, b"beacon", rng)) for k in keys]
        suite = verifiers_for(group)
        assert all(suite.threshold_share.verify_batch(items))
        benchmark(lambda: suite.threshold_share.verify_batch(items))

    def test_notary_share_batch_through_keyring(self, benchmark):
        # The production path: batch + the keyring's verification-result
        # cache, so steady-state repeats are nearly free.
        rings = generate_keyrings(13, 4, backend="real", group_profile="test")
        items = [
            (b"message", rings[i].sign_notary_share(b"message")) for i in range(13)
        ]
        assert rings[0].verify_notary_share_batch(items).all_valid()
        benchmark(lambda: rings[0].verify_notary_share_batch(items))


class TestErasureMicro:
    def test_rs_encode_100kb(self, benchmark):
        data = os.urandom(100_000)
        params = CodecParams(5, 13)
        benchmark(lambda: encode(data, params))

    def test_rs_decode_100kb_from_parity(self, benchmark):
        data = os.urandom(100_000)
        params = CodecParams(5, 13)
        shards = encode(data, params)
        subset = {i: shards[i] for i in range(8, 13)}
        benchmark(lambda: decode(subset, params, len(data)))

    def test_merkle_tree_40_leaves(self, benchmark):
        leaves = [os.urandom(1024) for _ in range(40)]
        benchmark(lambda: MerkleTree(leaves))


class TestSimulatorMicro:
    def test_event_dispatch_rate(self, benchmark):
        def run_10k_events():
            sim = Simulation()
            remaining = [10_000]

            def tick():
                remaining[0] -= 1
                if remaining[0] > 0:
                    sim.schedule(0.001, tick)

            sim.schedule(0.0, tick)
            sim.run()
            return sim.events_processed

        assert benchmark(run_10k_events) == 10_000


class TestEndToEndMicro:
    def test_icc0_simulated_round_cost(self, benchmark):
        """Wall-clock cost of one simulated ICC0 round, 13 parties."""
        from repro.core import ClusterConfig, build_cluster
        from repro.sim.delays import FixedDelay

        def ten_rounds():
            config = ClusterConfig(
                n=13, t=4, delta_bound=0.5, epsilon=0.01,
                delay_model=FixedDelay(0.05), max_rounds=10, seed=1,
            )
            cluster = build_cluster(config)
            cluster.start()
            cluster.run_until_all_committed_round(9, timeout=60)
            return cluster.min_committed_round()

        assert benchmark(ten_rounds) >= 9
