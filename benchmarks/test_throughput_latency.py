"""Benchmarks E1/E2 — reciprocal throughput and latency (Section 1).

Paper: ICC0/ICC1 finish a round every 2δ and commit after 3δ;
ICC2 pays one extra δ (3δ / 4δ).
"""

from __future__ import annotations

import pytest

from repro.experiments.throughput_latency import run_one


class TestICC0:
    def test_round_time_2_delta(self, once):
        r = once(run_one, "ICC0", 0.05, n=7, rounds=25)
        assert r.round_time_in_delta == pytest.approx(2.0, rel=0.05)

    def test_latency_3_delta(self, once):
        r = once(run_one, "ICC0", 0.1, n=7, rounds=25)
        assert r.latency_in_delta == pytest.approx(3.0, rel=0.05)


class TestICC1:
    def test_round_time_2_delta(self, once):
        r = once(run_one, "ICC1", 0.05, n=7, rounds=25)
        assert r.round_time_in_delta == pytest.approx(2.0, rel=0.05)

    def test_latency_3_delta(self, once):
        r = once(run_one, "ICC1", 0.05, n=7, rounds=25)
        assert r.latency_in_delta == pytest.approx(3.0, rel=0.05)


class TestICC2:
    def test_round_time_3_delta(self, once):
        r = once(run_one, "ICC2", 0.05, n=7, rounds=25)
        assert r.round_time_in_delta == pytest.approx(3.0, rel=0.05)

    def test_latency_4_delta(self, once):
        r = once(run_one, "ICC2", 0.05, n=7, rounds=25)
        assert r.latency_in_delta == pytest.approx(4.0, rel=0.05)


class TestDeltaScaling:
    def test_round_time_scales_linearly_with_delta(self, once):
        """Optimistic responsiveness: round time is c·δ, not c·Δbnd."""

        def sweep():
            return [run_one("ICC0", d, n=7, rounds=15) for d in (0.02, 0.08)]

        small, large = once(sweep)
        assert large.round_time / small.round_time == pytest.approx(4.0, rel=0.1)
