"""Setuptools shim.

The offline toolchain in some environments lacks the ``wheel`` package that
PEP 660 editable installs require; keeping a ``setup.py`` lets
``pip install -e .`` fall back to the legacy editable path.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
