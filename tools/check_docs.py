#!/usr/bin/env python
"""Documentation checks: relative links resolve, markdown is well-formed.

Run from anywhere::

    python tools/check_docs.py

Checks every ``*.md`` file in the repo root and ``docs/``:

* relative links and images point at files/directories that exist
  (external ``http(s)``/``mailto`` targets and pure ``#anchor`` links are
  skipped; ``path#anchor`` links are checked for the path part);
* code fences are balanced (every ``````` opener has a closer);
* no tab characters inside markdown tables (they break column alignment);
* every ``python -m repro`` subcommand registered in
  ``src/repro/__main__.py`` is documented in the README (the parser is
  scanned textually — no import — so the check runs without the package
  installed);
* every metric name registered in ``src/repro/obs/metrics.py`` is
  documented in ``docs/OBSERVABILITY.md`` (same textual scan, no
  import);
* every event kind registered in ``src/repro/obs/registry.py`` is
  documented in ``docs/OBSERVABILITY.md``;
* every committed ``BENCH_*.json`` snapshot in the repo root is
  described in ``docs/PERFORMANCE.md``;
* every crypto backend registered in ``src/repro/crypto/backend.py`` is
  documented in ``docs/PERFORMANCE.md`` (textual scan of
  ``register_backend(...)`` calls);
* every ``shard.*`` metric and event kind additionally appears in
  ``docs/SHARDING.md`` (the sharding subsystem's own page must not
  drift from the registries either);
* every ``live.*`` metric and event kind additionally appears in
  ``docs/TRANSPORT.md``, the live transport's reference page;
* the observability CLI surface (``trace``, ``collect``, ``top``) is
  shown as ``python -m repro <name>`` invocations in
  ``docs/OBSERVABILITY.md``, not just the README.

Exit status 0 when clean, 1 with one line per problem otherwise.  CI runs
this plus the test-suite; ``tests/test_docs.py`` runs it in-process.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]

#: Generated reference dumps (arxiv retrievals, exemplar snippets, task
#: specs) — not maintained documentation, so not held to these checks.
SKIP = {"PAPERS.md", "SNIPPETS.md", "ISSUE.md", "CHANGES.md"}

#: Inline links/images: [text](target) — target group without title part.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> list[pathlib.Path]:
    files = sorted(REPO.glob("*.md"))
    docs = REPO / "docs"
    if docs.is_dir():
        files += sorted(docs.rglob("*.md"))
    return [f for f in files if f.name not in SKIP]


def strip_code(text: str) -> str:
    """Remove fenced code blocks and inline code so links inside them are ignored."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def check_links(path: pathlib.Path, problems: list[str]) -> None:
    for target in LINK_RE.findall(strip_code(path.read_text(encoding="utf-8"))):
        if target.startswith(EXTERNAL):
            continue
        if target.startswith("#"):
            continue  # same-page anchor
        target_path = target.split("#", 1)[0]
        if not target_path:
            continue
        resolved = (path.parent / target_path).resolve()
        if not resolved.exists():
            problems.append(f"{path.relative_to(REPO)}: broken link -> {target}")


def check_fences(path: pathlib.Path, problems: list[str]) -> None:
    fences = sum(
        1
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.lstrip().startswith("```")
    )
    if fences % 2:
        problems.append(f"{path.relative_to(REPO)}: unbalanced code fences")


def check_tables(path: pathlib.Path, problems: list[str]) -> None:
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if line.startswith("|") and "\t" in line:
            problems.append(
                f"{path.relative_to(REPO)}:{lineno}: tab character inside table"
            )


#: ``sub.add_parser("name", ...)`` registrations in the CLI module.
SUBCOMMAND_RE = re.compile(r"""\.add_parser\(\s*["']([a-z0-9-]+)["']""")


def cli_subcommands() -> list[str]:
    """Subcommand names registered in ``src/repro/__main__.py``."""
    cli = REPO / "src" / "repro" / "__main__.py"
    if not cli.is_file():
        return []
    return sorted(set(SUBCOMMAND_RE.findall(cli.read_text(encoding="utf-8"))))


def check_cli_docs(problems: list[str]) -> None:
    """Every CLI subcommand must appear as ``python -m repro <name>`` in README."""
    readme = REPO / "README.md"
    if not readme.is_file():
        problems.append("README.md: missing (cannot check CLI subcommand docs)")
        return
    # Collapse whitespace so invocations wrapped across lines still match.
    text = re.sub(r"\s+", " ", readme.read_text(encoding="utf-8"))
    for name in cli_subcommands():
        if f"python -m repro {name}" not in text:
            problems.append(
                f"README.md: CLI subcommand {name!r} is undocumented "
                f"(no `python -m repro {name}` invocation found)"
            )


#: ``register_metric("name", ...)`` declarations in the metrics module.
METRIC_RE = re.compile(r"""register_metric\(\s*\n?\s*["']([a-z0-9_.]+)["']""")


def registered_metrics() -> list[str]:
    """Metric names registered in ``src/repro/obs/metrics.py``."""
    metrics = REPO / "src" / "repro" / "obs" / "metrics.py"
    if not metrics.is_file():
        return []
    return sorted(set(METRIC_RE.findall(metrics.read_text(encoding="utf-8"))))


def check_metric_docs(problems: list[str]) -> None:
    """Every registered metric must appear backticked in OBSERVABILITY.md."""
    doc = REPO / "docs" / "OBSERVABILITY.md"
    if not doc.is_file():
        if registered_metrics():
            problems.append(
                "docs/OBSERVABILITY.md: missing (cannot check metric docs)"
            )
        return
    text = doc.read_text(encoding="utf-8")
    for name in registered_metrics():
        if f"`{name}`" not in text:
            problems.append(
                f"docs/OBSERVABILITY.md: metric {name!r} is undocumented "
                f"(no `{name}` mention found)"
            )


#: ``register("kind", ...)`` declarations in the event-kind registry.
EVENT_RE = re.compile(r"""(?<!_)register\(\s*\n?\s*["']([a-z0-9_.]+)["']""")


def registered_event_kinds() -> list[str]:
    """Event-kind names registered in ``src/repro/obs/registry.py``."""
    registry = REPO / "src" / "repro" / "obs" / "registry.py"
    if not registry.is_file():
        return []
    return sorted(set(EVENT_RE.findall(registry.read_text(encoding="utf-8"))))


def check_event_docs(problems: list[str]) -> None:
    """Every registered event kind must appear backticked in OBSERVABILITY.md."""
    doc = REPO / "docs" / "OBSERVABILITY.md"
    if not doc.is_file():
        if registered_event_kinds():
            problems.append(
                "docs/OBSERVABILITY.md: missing (cannot check event-kind docs)"
            )
        return
    text = doc.read_text(encoding="utf-8")
    for name in registered_event_kinds():
        if f"`{name}`" not in text:
            problems.append(
                f"docs/OBSERVABILITY.md: event kind {name!r} is undocumented "
                f"(no `{name}` mention found)"
            )


def check_shard_docs(problems: list[str]) -> None:
    """Every ``shard.*`` metric and event kind must appear backticked in
    SHARDING.md, the sharding subsystem's own reference page."""
    shard_names = [
        name
        for name in registered_metrics() + registered_event_kinds()
        if name.startswith("shard.")
    ]
    if not shard_names:
        return
    doc = REPO / "docs" / "SHARDING.md"
    if not doc.is_file():
        problems.append("docs/SHARDING.md: missing (cannot check shard.* docs)")
        return
    text = doc.read_text(encoding="utf-8")
    for name in sorted(set(shard_names)):
        if f"`{name}`" not in text:
            problems.append(
                f"docs/SHARDING.md: shard name {name!r} is undocumented "
                f"(no `{name}` mention found)"
            )


def bench_snapshots() -> list[str]:
    """Committed ``BENCH_*.json`` snapshot files in the repo root."""
    return sorted(p.name for p in REPO.glob("BENCH_*.json"))


def check_bench_docs(problems: list[str]) -> None:
    """Every committed bench snapshot must be described in PERFORMANCE.md."""
    doc = REPO / "docs" / "PERFORMANCE.md"
    if not doc.is_file():
        if bench_snapshots():
            problems.append(
                "docs/PERFORMANCE.md: missing (cannot check bench snapshot docs)"
            )
        return
    text = doc.read_text(encoding="utf-8")
    for name in bench_snapshots():
        if name not in text:
            problems.append(
                f"docs/PERFORMANCE.md: bench snapshot {name!r} is undocumented"
            )


#: ``register_backend("name", ...)`` registrations in the backend module.
BACKEND_RE = re.compile(r"""register_backend\(\s*\n?\s*["']([a-z0-9_]+)["']""")


def registered_backends() -> list[str]:
    """Backend names registered in ``src/repro/crypto/backend.py``."""
    module = REPO / "src" / "repro" / "crypto" / "backend.py"
    if not module.is_file():
        return []
    return sorted(set(BACKEND_RE.findall(module.read_text(encoding="utf-8"))))


def check_backend_docs(problems: list[str]) -> None:
    """Every registered crypto backend must appear backticked in
    PERFORMANCE.md, the hot-path reference page."""
    names = registered_backends()
    if not names:
        return
    doc = REPO / "docs" / "PERFORMANCE.md"
    if not doc.is_file():
        problems.append(
            "docs/PERFORMANCE.md: missing (cannot check crypto backend docs)"
        )
        return
    text = doc.read_text(encoding="utf-8")
    for name in names:
        if f"`{name}`" not in text:
            problems.append(
                f"docs/PERFORMANCE.md: crypto backend {name!r} is undocumented "
                f"(no `{name}` mention found)"
            )


#: Observability CLI surface: these subcommands must be shown (as a
#: ``python -m repro <name>`` invocation) in docs/OBSERVABILITY.md, the
#: tracing/metrics reference page, not just in the README.
OBSERVABILITY_CLIS = ("trace", "collect", "top")


def check_observability_cli_docs(problems: list[str]) -> None:
    """The trace/collect/top commands must be documented where the
    observability subsystem is documented."""
    registered = set(cli_subcommands())
    wanted = [name for name in OBSERVABILITY_CLIS if name in registered]
    if not wanted:
        return
    doc = REPO / "docs" / "OBSERVABILITY.md"
    if not doc.is_file():
        problems.append(
            "docs/OBSERVABILITY.md: missing (cannot check observability CLIs)"
        )
        return
    text = re.sub(r"\s+", " ", doc.read_text(encoding="utf-8"))
    for name in wanted:
        if f"python -m repro {name}" not in text:
            problems.append(
                f"docs/OBSERVABILITY.md: observability CLI {name!r} is "
                f"undocumented (no `python -m repro {name}` invocation found)"
            )


def check_live_docs(problems: list[str]) -> None:
    """Every ``live.*`` metric and event kind must appear backticked in
    TRANSPORT.md, the live transport's own reference page."""
    live_names = [
        name
        for name in registered_metrics() + registered_event_kinds()
        if name.startswith("live.")
    ]
    if not live_names:
        return
    doc = REPO / "docs" / "TRANSPORT.md"
    if not doc.is_file():
        problems.append("docs/TRANSPORT.md: missing (cannot check live.* docs)")
        return
    text = doc.read_text(encoding="utf-8")
    for name in sorted(set(live_names)):
        if f"`{name}`" not in text:
            problems.append(
                f"docs/TRANSPORT.md: live transport name {name!r} is "
                f"undocumented (no `{name}` mention found)"
            )


def run() -> list[str]:
    problems: list[str] = []
    for path in doc_files():
        check_links(path, problems)
        check_fences(path, problems)
        check_tables(path, problems)
    check_cli_docs(problems)
    check_observability_cli_docs(problems)
    check_metric_docs(problems)
    check_event_docs(problems)
    check_shard_docs(problems)
    check_live_docs(problems)
    check_bench_docs(problems)
    check_backend_docs(problems)
    return problems


def main() -> int:
    problems = run()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print(f"docs OK ({len(doc_files())} markdown files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
