#!/usr/bin/env python3
"""Bench regression gate: committed snapshots vs a fresh quick run.

The repository commits six benchmark snapshots — ``BENCH_crypto.json``
(crypto fast path, written by ``python -m repro bench --json``),
``BENCH_runner.json`` (experiment runner, ``python -m repro bench-runner
--json``), ``BENCH_load.json`` (load/batching pipeline, ``python -m
repro load --bench --json``), ``BENCH_shard.json`` (multi-subnet
sharding, ``python -m repro shard --bench --json``),
``BENCH_hotpath.json`` (crypto backends / event queue / cross-height
flushing, ``python -m repro profile --json``) and ``BENCH_live.json``
(real-TCP localhost cluster, ``python -m repro live --bench``).  This
gate re-runs the benchmarks in ``--quick`` mode and compares the *ratio*
metrics (batch-verification speedups, runner speedup, setup-cache
speedup, batching gain, shard scaling gain) against the committed values
with a relative tolerance band.  Absolute throughput is
machine-dependent and is never gated; ratios of two timings on the same
machine are what the snapshots actually promise.  (The shard legs are
measured in simulation time and are bit-reproducible; they still go
through the ratio check so an intentional re-baseline only needs
``--update``.  The live leg is pure wall clock, so it gates correctness
bits — liveness, the prefix property, target height — instead of any
timing ratio; see :func:`gate_live`.)

Usage::

    python tools/bench_gate.py [--tolerance 0.25] [--update]
        [--crypto-baseline PATH] [--runner-baseline PATH]
        [--load-baseline PATH] [--shard-baseline PATH]
        [--hotpath-baseline PATH] [--live-baseline PATH]
        [--crypto-fresh PATH] [--runner-fresh PATH]
        [--load-fresh PATH] [--shard-fresh PATH]
        [--hotpath-fresh PATH] [--live-fresh PATH]

Passing ``--*-fresh`` files skips running that benchmark (useful for
tests and for gating artifacts produced elsewhere in CI).  ``--update``
rewrites the committed snapshots from the fresh results instead of
failing, for intentional performance changes.

Exit status 0 = within tolerance, 1 = regression (or malformed input).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CRYPTO_BASELINE = os.path.join(ROOT, "BENCH_crypto.json")
RUNNER_BASELINE = os.path.join(ROOT, "BENCH_runner.json")
LOAD_BASELINE = os.path.join(ROOT, "BENCH_load.json")
SHARD_BASELINE = os.path.join(ROOT, "BENCH_shard.json")
HOTPATH_BASELINE = os.path.join(ROOT, "BENCH_hotpath.json")
LIVE_BASELINE = os.path.join(ROOT, "BENCH_live.json")

#: Default relative tolerance: fresh ratio may be this fraction below
#: the committed one before the gate fails.  Improvements never fail.
DEFAULT_TOLERANCE = 0.25


def _ratio_check(name: str, committed, fresh, tolerance: float) -> list[str]:
    """Compare one ratio metric; returns failure messages (empty = ok)."""
    if committed in (None, "skipped") or fresh in (None, "skipped"):
        # A leg legitimately skipped (e.g. the runner's parallel pass on
        # a single-core machine) gates nothing.
        return []
    try:
        committed_f, fresh_f = float(committed), float(fresh)
    except (TypeError, ValueError):
        return [f"{name}: non-numeric values ({committed!r} vs {fresh!r})"]
    floor = committed_f * (1.0 - tolerance)
    if fresh_f < floor:
        return [
            f"{name}: fresh {fresh_f:.3g} below committed {committed_f:.3g} "
            f"- {tolerance:.0%} tolerance (floor {floor:.3g})"
        ]
    return []


def gate_crypto(committed: dict, fresh: dict, tolerance: float) -> list[str]:
    """Failures for the crypto fast-path snapshot (speedup per primitive)."""
    failures: list[str] = []
    committed_rows = {
        row.get("primitive"): row for row in committed.get("results", ())
    }
    fresh_rows = {row.get("primitive"): row for row in fresh.get("results", ())}
    for primitive, row in sorted(committed_rows.items()):
        if primitive not in fresh_rows:
            failures.append(f"crypto[{primitive}]: missing from fresh run")
            continue
        failures += _ratio_check(
            f"crypto[{primitive}].speedup",
            row.get("speedup"),
            fresh_rows[primitive].get("speedup"),
            tolerance,
        )
        fresh_speedup = fresh_rows[primitive].get("speedup")
        if isinstance(fresh_speedup, (int, float)) and fresh_speedup < 1.0:
            failures.append(
                f"crypto[{primitive}]: batch slower than single "
                f"(speedup {fresh_speedup:.3g} < 1)"
            )
    return failures


def gate_runner(committed: dict, fresh: dict, tolerance: float) -> list[str]:
    """Failures for the runner snapshot (parallel + setup-cache ratios)."""
    failures: list[str] = []
    if fresh.get("results_identical") is False:
        failures.append("runner: parallel results differ from serial")
    failures += _ratio_check(
        "runner.speedup",
        committed.get("speedup"),
        fresh.get("speedup"),
        tolerance,
    )
    committed_cache = committed.get("setup_cache", {})
    fresh_cache = fresh.get("setup_cache", {})
    failures += _ratio_check(
        "runner.setup_cache.speedup_disk",
        committed_cache.get("speedup_disk"),
        fresh_cache.get("speedup_disk"),
        tolerance,
    )
    return failures


def gate_load(committed: dict, fresh: dict, tolerance: float) -> list[str]:
    """Failures for the load-pipeline snapshot (``BENCH_load.json``).

    ``sim.batching_gain`` is measured in *simulation* time, so it is
    deterministic and machine-independent; it still goes through the
    ratio check so an intentional re-baseline only needs ``--update``.
    ``auth.speedup`` is wall clock and gets the usual tolerance band.
    ``request_sets_match`` is a correctness bit, not a ratio: False in
    either snapshot fails outright.
    """
    failures: list[str] = []
    for report, origin in ((committed, "committed"), (fresh, "fresh")):
        if report.get("request_sets_match") is not True:
            failures.append(
                f"load[{origin}]: batched and unbatched request sets differ"
            )
    failures += _ratio_check(
        "load.sim.batching_gain",
        committed.get("sim", {}).get("batching_gain"),
        fresh.get("sim", {}).get("batching_gain"),
        tolerance,
    )
    failures += _ratio_check(
        "load.auth.speedup",
        committed.get("auth", {}).get("speedup"),
        fresh.get("auth", {}).get("speedup"),
        tolerance,
    )
    fresh_speedup = fresh.get("auth", {}).get("speedup")
    if isinstance(fresh_speedup, (int, float)) and fresh_speedup < 1.0:
        failures.append(
            f"load: batch authentication slower than per-item "
            f"(speedup {fresh_speedup:.3g} < 1)"
        )
    return failures


def gate_shard(committed: dict, fresh: dict, tolerance: float) -> list[str]:
    """Failures for the sharding snapshot (``BENCH_shard.json``).

    Every leg is measured in *simulation* time (deterministic and
    machine-independent), so the ratio metrics should reproduce exactly;
    the tolerance band exists only so an intentional re-baseline follows
    the same ``--update`` path as the other snapshots.  The correctness
    bits — monotone scaling, forged-stream rejection, serial == parallel
    — are not ratios: False in either snapshot fails outright.
    """
    failures: list[str] = []
    for report, origin in ((committed, "committed"), (fresh, "fresh")):
        if report.get("scaling", {}).get("monotonic") is not True:
            failures.append(
                f"shard[{origin}]: goodput does not scale monotonically with K"
            )
        if report.get("forged_rejected") is not True:
            failures.append(
                f"shard[{origin}]: forged stream message was not rejected"
            )
        if report.get("results_identical") is not True:
            failures.append(
                f"shard[{origin}]: serial and parallel results differ"
            )
    failures += _ratio_check(
        "shard.scaling.scaling_gain",
        committed.get("scaling", {}).get("scaling_gain"),
        fresh.get("scaling", {}).get("scaling_gain"),
        tolerance,
    )
    failures += _ratio_check(
        "shard.cross.latency_penalty",
        committed.get("cross", {}).get("latency_penalty"),
        fresh.get("cross", {}).get("latency_penalty"),
        tolerance,
    )
    penalty = fresh.get("cross", {}).get("latency_penalty")
    if isinstance(penalty, (int, float)) and penalty < 1.0:
        failures.append(
            f"shard: cross-shard latency penalty {penalty:.3g} < 1 — "
            "cross-shard commits cannot be faster than local ones"
        )
    return failures


def gate_hotpath(committed: dict, fresh: dict, tolerance: float) -> list[str]:
    """Failures for the hot-path snapshot (``BENCH_hotpath.json``).

    ``results_identical`` is a correctness bit — it asserts the same
    seeded deployment commits the identical chain under every crypto
    backend, under both event-queue implementations, and with
    cross-height flushing on or off; False in either snapshot fails
    outright.  The backend and event-queue speedups are wall-clock
    ratios and get the usual tolerance band; a fresh speedup below 1
    (the optimised path losing to its own baseline) always fails.  The
    committed snapshot must additionally keep the paper-the-cost claim
    honest: best backend at least 2x over ``pure``.
    """
    failures: list[str] = []
    for report, origin in ((committed, "committed"), (fresh, "fresh")):
        if report.get("results_identical") is not True:
            failures.append(
                f"hotpath[{origin}]: results differ across backends/queues/"
                "flush modes"
            )
    committed_best = committed.get("best_speedup")
    if isinstance(committed_best, (int, float)) and committed_best < 2.0:
        failures.append(
            f"hotpath: committed best-backend speedup {committed_best:.3g} "
            "< 2x over pure — re-measure before committing the snapshot"
        )
    failures += _ratio_check(
        "hotpath.best_speedup",
        committed_best,
        fresh.get("best_speedup"),
        tolerance,
    )
    failures += _ratio_check(
        "hotpath.event_queue.speedup",
        committed.get("event_queue", {}).get("speedup"),
        fresh.get("event_queue", {}).get("speedup"),
        tolerance,
    )
    for name, value in (
        ("best backend", fresh.get("best_speedup")),
        ("calendar event queue", fresh.get("event_queue", {}).get("speedup")),
    ):
        if isinstance(value, (int, float)) and value < 1.0:
            failures.append(
                f"hotpath: {name} slower than its baseline "
                f"(speedup {value:.3g} < 1)"
            )
    return failures


def gate_live(committed: dict, fresh: dict, tolerance: float) -> list[str]:
    """Failures for the live-transport snapshot (``BENCH_live.json``).

    Wall-clock finalization latency is inherently machine-dependent, and
    the fresh probe is a smaller cluster run than the committed snapshot,
    so this leg gates **correctness bits**, not timing ratios: liveness
    (every party reached the target height), safety (the reported
    committed chains satisfy the paper's prefix property), full
    attendance, and internally consistent latency numbers.  The committed
    snapshot must additionally meet the PR's acceptance floor of 20
    finalized heights.
    """
    failures: list[str] = []
    for report, origin in ((committed, "committed"), (fresh, "fresh")):
        live = report.get("live", {})
        if live.get("live_ok") is not True:
            failures.append(
                f"live[{origin}]: liveness bit false — some party missed "
                "its target height"
            )
        if live.get("safety_ok") is not True:
            failures.append(
                f"live[{origin}]: committed chains violate the prefix property"
            )
        n = report.get("cluster", {}).get("n")
        if live.get("parties_reporting") != n:
            failures.append(
                f"live[{origin}]: {live.get('parties_reporting')}/{n} "
                "parties reported a result"
            )
        target = report.get("target_height")
        min_height = live.get("min_height")
        if not (
            isinstance(target, int)
            and isinstance(min_height, int)
            and min_height >= target
        ):
            failures.append(
                f"live[{origin}]: min height {min_height!r} below target "
                f"{target!r}"
            )
        p50 = live.get("request_latency_p50")
        p90 = live.get("request_latency_p90")
        if live.get("requests_completed", 0) > 0:
            if not (
                isinstance(p50, (int, float))
                and isinstance(p90, (int, float))
                and 0 < p50 <= p90
            ):
                failures.append(
                    f"live[{origin}]: inconsistent request latencies "
                    f"(p50 {p50!r}, p90 {p90!r})"
                )
        rate = live.get("heights_per_sec")
        if not (isinstance(rate, (int, float)) and rate > 0):
            failures.append(
                f"live[{origin}]: non-positive finalization rate {rate!r}"
            )
        breakdown = live.get("latency_breakdown")
        if not isinstance(breakdown, dict):
            failures.append(
                f"live[{origin}]: no latency_breakdown block — run with "
                "tracing (`python -m repro live --bench`)"
            )
        else:
            if breakdown.get("spans_telescope") is not True:
                failures.append(
                    f"live[{origin}]: critical-path stage spans do not "
                    "telescope to the measured finalization latency"
                )
            uncertainty = breakdown.get("clock_uncertainty_s")
            if not (
                isinstance(uncertainty, (int, float))
                and uncertainty >= 0
                and uncertainty == uncertainty  # not NaN
                and uncertainty != float("inf")
            ):
                failures.append(
                    f"live[{origin}]: clock-alignment uncertainty "
                    f"{uncertainty!r} is not a finite non-negative bound"
                )
    committed_target = committed.get("target_height")
    if not (isinstance(committed_target, int) and committed_target >= 20):
        failures.append(
            f"live: committed snapshot targets {committed_target!r} heights "
            "— the acceptance floor is 20; re-measure with "
            "`python -m repro live --bench`"
        )
    return failures


def audit_snapshot(report: dict) -> list[str]:
    """Sanity-check a runner snapshot for internally nonsensical data.

    Guards against re-committing the regression this gate was built
    after: a ``cores: 1`` snapshot carrying a sub-1 parallel "speedup"
    measured by time-slicing a single core.
    """
    failures: list[str] = []
    cores = report.get("cores")
    speedup = report.get("speedup")
    if cores == 1 and isinstance(speedup, (int, float)):
        failures.append(
            f"runner snapshot: cores=1 but numeric speedup {speedup} — "
            "single-core machines must record the parallel leg as skipped"
        )
    return failures


def _run_fresh_crypto() -> dict:
    sys.path.insert(0, os.path.join(ROOT, "src"))
    import tempfile

    from repro.experiments import crypto_bench

    with tempfile.NamedTemporaryFile("r", suffix=".json") as handle:
        status = crypto_bench.main(
            ["--quick", "--seed", "0", "--json", handle.name]
        )
        if status:
            raise SystemExit(f"fresh crypto bench failed with status {status}")
        handle.seek(0)
        return json.load(handle)


def _run_fresh_runner() -> dict:
    sys.path.insert(0, os.path.join(ROOT, "src"))
    import tempfile

    from repro.experiments import runner_bench

    with tempfile.NamedTemporaryFile("r", suffix=".json") as handle:
        status = runner_bench.main(["--quick", "--json", handle.name])
        if status:
            raise SystemExit(f"fresh runner bench failed with status {status}")
        handle.seek(0)
        return json.load(handle)


def _run_fresh_load() -> dict:
    sys.path.insert(0, os.path.join(ROOT, "src"))
    import tempfile

    from repro.experiments import load as load_bench

    with tempfile.NamedTemporaryFile("r", suffix=".json") as handle:
        status = load_bench.main(
            ["--bench", "--quick", "--seed", "0", "--json", handle.name]
        )
        if status:
            raise SystemExit(f"fresh load bench failed with status {status}")
        handle.seek(0)
        return json.load(handle)


def _run_fresh_shard() -> dict:
    sys.path.insert(0, os.path.join(ROOT, "src"))
    import tempfile

    from repro.experiments import sharding

    with tempfile.NamedTemporaryFile("r", suffix=".json") as handle:
        status = sharding.main(
            ["--bench", "--quick", "--seed", "0", "--json", handle.name]
        )
        if status:
            raise SystemExit(f"fresh shard bench failed with status {status}")
        handle.seek(0)
        return json.load(handle)


def _run_fresh_hotpath() -> dict:
    sys.path.insert(0, os.path.join(ROOT, "src"))
    import tempfile

    from repro.experiments import profile_hotpath

    with tempfile.NamedTemporaryFile("r", suffix=".json") as handle:
        status = profile_hotpath.main(
            ["--quick", "--seed", "0", "--json", handle.name]
        )
        if status:
            raise SystemExit(f"fresh hotpath bench failed with status {status}")
        handle.seek(0)
        return json.load(handle)


def _run_fresh_live() -> dict:
    sys.path.insert(0, os.path.join(ROOT, "src"))

    from repro.net.config import local_live_config
    from repro.net.live import bench_snapshot, run_live_inproc

    # The quick probe: a small in-process cluster (real TCP, one event
    # loop) — the correctness bits are what gate_live checks, and those
    # are target-size-independent.
    config = local_live_config(
        4, t=1, seed=0, epsilon=0.02, target_height=5, timeout=30.0,
        load_requests=40, load_batch=8,
    )
    return bench_snapshot(config, run_live_inproc(config))


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _write(path: str, report: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="relative slack below committed ratios")
    parser.add_argument("--crypto-baseline", default=CRYPTO_BASELINE)
    parser.add_argument("--runner-baseline", default=RUNNER_BASELINE)
    parser.add_argument("--load-baseline", default=LOAD_BASELINE)
    parser.add_argument("--shard-baseline", default=SHARD_BASELINE)
    parser.add_argument("--hotpath-baseline", default=HOTPATH_BASELINE)
    parser.add_argument("--live-baseline", default=LIVE_BASELINE)
    parser.add_argument("--crypto-fresh", default=None,
                        help="use this JSON instead of running the bench")
    parser.add_argument("--runner-fresh", default=None,
                        help="use this JSON instead of running the bench")
    parser.add_argument("--load-fresh", default=None,
                        help="use this JSON instead of running the bench")
    parser.add_argument("--shard-fresh", default=None,
                        help="use this JSON instead of running the bench")
    parser.add_argument("--hotpath-fresh", default=None,
                        help="use this JSON instead of running the bench")
    parser.add_argument("--live-fresh", default=None,
                        help="use this JSON instead of running the bench")
    parser.add_argument("--skip-crypto", action="store_true")
    parser.add_argument("--skip-runner", action="store_true")
    parser.add_argument("--skip-load", action="store_true")
    parser.add_argument("--skip-shard", action="store_true")
    parser.add_argument("--skip-hotpath", action="store_true")
    parser.add_argument("--skip-live", action="store_true")
    parser.add_argument("--update", action="store_true",
                        help="rewrite committed snapshots from fresh results")
    args = parser.parse_args(argv)

    failures: list[str] = []

    if not args.skip_crypto:
        committed = _load(args.crypto_baseline)
        fresh = (
            _load(args.crypto_fresh)
            if args.crypto_fresh
            else _run_fresh_crypto()
        )
        if args.update:
            _write(args.crypto_baseline, fresh)
            print(f"updated {args.crypto_baseline}")
        else:
            failures += gate_crypto(committed, fresh, args.tolerance)

    if not args.skip_runner:
        committed = _load(args.runner_baseline)
        fresh = (
            _load(args.runner_fresh)
            if args.runner_fresh
            else _run_fresh_runner()
        )
        failures += audit_snapshot(fresh)
        if args.update:
            if not audit_snapshot(fresh):
                _write(args.runner_baseline, fresh)
                print(f"updated {args.runner_baseline}")
        else:
            failures += audit_snapshot(committed)
            failures += gate_runner(committed, fresh, args.tolerance)

    if not args.skip_load:
        committed = _load(args.load_baseline)
        fresh = (
            _load(args.load_fresh)
            if args.load_fresh
            else _run_fresh_load()
        )
        if args.update:
            _write(args.load_baseline, fresh)
            print(f"updated {args.load_baseline}")
        else:
            failures += gate_load(committed, fresh, args.tolerance)

    if not args.skip_shard:
        committed = _load(args.shard_baseline)
        fresh = (
            _load(args.shard_fresh)
            if args.shard_fresh
            else _run_fresh_shard()
        )
        if args.update:
            _write(args.shard_baseline, fresh)
            print(f"updated {args.shard_baseline}")
        else:
            failures += gate_shard(committed, fresh, args.tolerance)

    if not args.skip_hotpath:
        committed = _load(args.hotpath_baseline)
        fresh = (
            _load(args.hotpath_fresh)
            if args.hotpath_fresh
            else _run_fresh_hotpath()
        )
        if args.update:
            _write(args.hotpath_baseline, fresh)
            print(f"updated {args.hotpath_baseline}")
        else:
            failures += gate_hotpath(committed, fresh, args.tolerance)

    if not args.skip_live:
        committed = _load(args.live_baseline)
        fresh = (
            _load(args.live_fresh)
            if args.live_fresh
            else _run_fresh_live()
        )
        if args.update:
            # The committed snapshot promises >= 20 heights; the quick
            # probe targets fewer, so --update never overwrites it from
            # a probe that would fail the floor.
            if fresh.get("target_height", 0) >= 20:
                _write(args.live_baseline, fresh)
                print(f"updated {args.live_baseline}")
            else:
                print(
                    f"not updating {args.live_baseline}: fresh run targets "
                    f"{fresh.get('target_height')} heights (< 20); use "
                    "`python -m repro live --bench`"
                )
        else:
            failures += gate_live(committed, fresh, args.tolerance)

    if failures:
        print("bench gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"bench gate passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
