#!/usr/bin/env python3
"""Reproduce Table 1 of the paper (Section 5).

Runs ICC1 over the WAN model for both subnet sizes and all three scenarios
and prints measured vs published numbers.  Pass ``--full`` for the paper's
5-minute windows (default: 60 s, which is already in steady state).

Run:  python examples/table1_repro.py [--full]
"""

from __future__ import annotations

import sys

from repro.experiments.table1 import main as table1_main

if __name__ == "__main__":
    duration = 300.0 if "--full" in sys.argv[1:] else 60.0
    print(f"measurement window: {duration:.0f}s per cell "
          f"({'paper setting' if duration == 300 else 'quick mode, pass --full for 300s'})")
    table1_main(duration=duration)
