#!/usr/bin/env python3
"""Key lifecycle: DKG setup, consensus, then proactive resharing.

Demonstrates both setup paths Section 3.1 mentions and the resharing
scheme Section 5 lists as standing traffic:

1. the seven parties run the Feldman joint-VSS **DKG** — nobody ever
   holds the beacon master key;
2. a threshold signature (a beacon step) is produced under the DKG key;
3. a **proactive resharing** epoch refreshes every share: old shares
   become useless, the master public key — and therefore the beacon
   value for the same input — is bit-identical.

Run:  python examples/key_ceremonies.py
"""

from __future__ import annotations

from random import Random

from repro.crypto import threshold
from repro.crypto.api import verifiers_for
from repro.crypto.dkg import run_dkg
from repro.crypto.group import test_group
from repro.crypto.resharing import reshare, resharing_traffic_bytes

N, T = 7, 2
H = T + 1  # beacon threshold


def main() -> None:
    group = test_group()
    rng = Random(2024)

    print(f"group: |p| = {group.p.bit_length()} bits, |q| = {group.q.bit_length()} bits")
    print(f"parties: n = {N}, t = {T}, beacon threshold h = {H}\n")

    # 1. Distributed key generation — no trusted dealer.
    dkg = run_dkg(group, h=H, n=N, rng=rng)
    print(f"DKG: {len(dkg.qualified)}/{N} dealers qualified, "
          f"master public key {hex(dkg.public.master_public)[:18]}…")

    # 2. A beacon step under the DKG key.
    message = b"R_0 -> R_1"
    shares = [
        threshold.sign_share(dkg.public, key, message, rng)
        for key in dkg.key_shares[:H]
    ]
    sig_before = threshold.combine(dkg.public, message, shares)
    assert verifiers_for(group).threshold.verify(dkg.public, message, sig_before)
    print(f"beacon value (epoch 0): {hex(sig_before.value)[:18]}…")

    # 3. Proactive resharing: contributors 3, 5, 7 refresh everyone.
    contributors = [dkg.key_shares[2], dkg.key_shares[4], dkg.key_shares[6]]
    new_public, new_keys = reshare(group, dkg.public, contributors, rng)
    assert new_public.master_public == dkg.public.master_public
    changed = sum(1 for a, b in zip(dkg.key_shares, new_keys) if a.secret != b.secret)
    print(f"resharing: {changed}/{N} shares refreshed, master key unchanged "
          f"(~{resharing_traffic_bytes(N)} wire bytes)")

    # The same beacon input signed by a disjoint committee under the new
    # shares yields the identical unique value: the chain never notices.
    new_shares = [
        threshold.sign_share(new_public, key, message, rng)
        for key in new_keys[3:6]
    ]
    sig_after = threshold.combine(new_public, message, new_shares)
    assert verifiers_for(group).threshold.verify(new_public, message, sig_after)
    print(f"beacon value (epoch 1): {hex(sig_after.value)[:18]}…")
    assert sig_after.value == sig_before.value
    print("\nepoch-invariant beacon: OK — old shares are now dead weight "
          "(a coalition mixing epochs fails verification).")


if __name__ == "__main__":
    main()
