#!/usr/bin/env python3
"""ICC2's erasure-coded reliable broadcast, end to end.

Demonstrates the subprotocol of independent interest (Section 1): a dealer
disperses a 2 MB block as Reed–Solomon fragments with Merkle proofs; every
party reconstructs after one echo round; per-party traffic is O(S) instead
of the (n-1)·S a naive broadcast costs — then shows the consistency check
defeating an inconsistent (Byzantine) dealer.

Run:  python examples/erasure_broadcast.py
"""

from __future__ import annotations

import os

from repro.erasure.merkle import MerkleTree
from repro.erasure.reed_solomon import CodecParams, encode
from repro.rbc.protocol import Fragment, RbcEndpoint, RbcMessage
from repro.sim import FixedDelay, Metrics, Network, Simulation

N, T = 13, 4
DELTA = 0.05
BLOCK = os.urandom(2_000_000)  # a 2 MB block, "a few megabytes" per §1


def build(seed=1):
    sim = Simulation(seed=seed)
    network = Network(sim, N, FixedDelay(DELTA), Metrics(n=N))
    delivered: dict[int, list[bytes]] = {i: [] for i in range(1, N + 1)}
    endpoints = {}
    for i in range(1, N + 1):
        endpoint = RbcEndpoint(
            index=i, n=N, t=T, network=network,
            deliver=lambda dealer, root, data, i=i: delivered[i].append(data),
        )
        endpoints[i] = endpoint
        shim = type("Shim", (), {
            "index": i,
            "on_receive": lambda self, m, ep=endpoint: ep.on_message(m),
        })()
        network.attach(shim)
    return sim, network, endpoints, delivered


def honest_dispersal() -> None:
    sim, network, endpoints, delivered = build()
    endpoints[1].disperse(BLOCK)
    sim.run()
    ok = sum(1 for msgs in delivered.values() if msgs == [BLOCK])
    naive = (N - 1) * len(BLOCK)
    print(f"block size            : {len(BLOCK) / 1e6:.1f} MB, n={N}, t={T} "
          f"(reconstruct from any {T + 1} fragments)")
    print(f"parties delivered     : {ok}/{N}")
    print(f"delivery latency      : 2δ = {2 * DELTA * 1000:.0f} ms "
          f"(Cachin–Tessaro needs 3 message rounds)")
    print(f"dealer egress         : {network.metrics.bytes_sent[1] / 1e6:.2f} MB "
          f"(naive broadcast: {naive / 1e6:.1f} MB)")
    others = max(network.metrics.bytes_sent[i] for i in range(2, N + 1))
    print(f"max non-dealer egress : {others / 1e6:.2f} MB  "
          f"(= n/(t+1) ≈ {N / (T + 1):.1f}·S, flat in n)")


def inconsistent_dealer() -> None:
    sim, network, endpoints, delivered = build(seed=2)
    params = CodecParams(k=T + 1, m=N)
    shards_a = encode(b"A" * 4096, params)
    shards_b = encode(b"B" * 4096, params)
    mixed = shards_a[:6] + shards_b[6:]  # commitment over an impossible encoding
    tree = MerkleTree(mixed)
    for target in range(2, N + 1):
        network.send(1, target, RbcMessage(
            dealer=1, root=tree.root, data_length=4096, phase="send",
            fragment=Fragment(index=target - 1, data=mixed[target - 1],
                              proof=tree.proof(target - 1)),
        ))
    sim.run()
    victims = sum(1 for msgs in delivered.values() if msgs)
    print(f"parties tricked       : {victims}/{N} "
          "(re-encode check catches the inconsistent commitment)")


def main() -> None:
    print("— honest dealer —")
    honest_dispersal()
    print()
    print("— Byzantine dealer mixing two encodings under one Merkle root —")
    inconsistent_dealer()


if __name__ == "__main__":
    main()
