#!/usr/bin/env python3
"""Embed a live 4-party ICC cluster — real TCP sockets, one process.

``repro live`` spawns one OS process per party; this example uses the
embeddable form instead: :class:`repro.net.cluster.LiveCluster` hosts
all n parties on the current asyncio event loop, but every protocol
message still crosses a real TCP connection (n listening sockets,
n·(n−1) directed links, length-prefixed frames, kernel buffers — see
docs/TRANSPORT.md for the wire protocol).

The parties themselves are unmodified ``repro.core`` protocol objects:
the live transport implements the same scheduler and network surfaces
the simulator exposes, so the consensus code cannot tell it left the
simulator.  The walkthrough below

1. builds a localhost config with freshly allocated ports
   (``local_live_config``) — every party derives the same threshold
   keyring from the shared seed, no key-distribution step;
2. starts the cluster and waits, in wall-clock time, for every party
   to finalize ``TARGET`` heights;
3. checks the paper's safety property — all committed logs are
   prefixes of one another — and prints a per-party summary.

A small deterministic client load (``load_requests``) rides along
through the batched ingress pipeline (docs/LOAD.md), so the summary
also reports real request latencies: admission to finalization, in
wall-clock seconds.

Run:  PYTHONPATH=src python examples/live_cluster.py
"""

from __future__ import annotations

import asyncio

from repro.net.cluster import LiveCluster
from repro.net.config import local_live_config
from repro.net.live import summarize

TARGET = 5  # heights every party must finalize before we stop


async def main() -> None:
    # A 4-party, 1-fault localhost cluster.  epsilon is the rank-0
    # round governor: on localhost RTTs are ~0, so rounds complete in
    # roughly epsilon seconds each.
    config = local_live_config(
        4,
        t=1,
        seed=7,
        epsilon=0.02,
        target_height=TARGET,
        timeout=30.0,
        load_requests=16,
        load_batch=8,
        cluster_id="example",
    )

    async with LiveCluster(config) as cluster:
        ok = await cluster.wait_for_height(TARGET, timeout=config.timeout)
        assert ok, f"cluster did not reach height {TARGET} in {config.timeout}s"

        # The paper's prefix property, checked across all four parties'
        # committed logs; raises AssertionError on divergence.
        cluster.check_safety()

        results = cluster.results()
        for record in results:
            record["reached_target"] = ok

    assert cluster.min_height() >= TARGET

    print(f"cluster '{config.cluster_id}': n={config.n}, t={config.t}, "
          f"target height {TARGET}")
    for record in results:
        print(f"  party {record['index']}: height {record['height']}, "
              f"{record['requests_completed']} requests finalized")

    block = summarize(config, results)
    print(f"liveness: {'ok' if block['live_ok'] else 'FAILED'}   "
          f"safety: {'ok' if block['safety_ok'] else 'FAILED'}")
    print(f"throughput: {block['heights_per_sec']:.1f} heights/s wall clock")
    if block.get("requests_completed"):
        print(f"request latency: p50 {block['request_latency_p50'] * 1000:.0f} ms, "
              f"p90 {block['request_latency_p90'] * 1000:.0f} ms "
              f"({block['requests_completed']} requests)")


if __name__ == "__main__":
    asyncio.run(main())
