#!/usr/bin/env python3
"""Robust consensus demo: ICC under attack vs PBFT under attack.

Reproduces the paper's Section 1.1 "robust consensus" argument live:

1. a 10-party ICC0 deployment absorbs the full t=3 Byzantine budget
   (an equivocating proposer, a slow proposer, a silent node) and keeps
   committing at a bounded slowdown;
2. the same network running PBFT is throttled to the attacker's pace by a
   single slow primary that stays just under the view-change timeout
   (the attack of [15] the paper cites).

Run:  python examples/byzantine_resilience.py
"""

from __future__ import annotations

from repro.adversary import (
    EquivocatingProposerMixin,
    SilentMixin,
    SlowProposerMixin,
    corrupt_class,
)
from repro.baselines import BaselineClusterConfig, PBFTParty, build_baseline_cluster
from repro.core import ClusterConfig, build_cluster
from repro.core.icc0 import ICC0Party
from repro.experiments.robustness import SlowPrimaryPBFT
from repro.sim import FixedDelay

N, T = 10, 3
DELTA = 0.05
DURATION = 60.0


def run_icc(attack: bool) -> float:
    corrupt = {}
    if attack:
        slow = corrupt_class(ICC0Party, SlowProposerMixin)
        slow.propose_lag = 3.0
        corrupt = {
            1: corrupt_class(ICC0Party, EquivocatingProposerMixin),
            2: slow,
            3: corrupt_class(ICC0Party, SilentMixin),
        }
    config = ClusterConfig(
        n=N, t=T, delta_bound=0.5, epsilon=0.01,
        delay_model=FixedDelay(DELTA), seed=3, corrupt=corrupt,
    )
    cluster = build_cluster(config)
    cluster.start()
    cluster.run_for(DURATION)
    cluster.check_safety()
    return cluster.metrics.blocks_per_second(cluster.honest_parties[0].index, DURATION)


def run_pbft(attack: bool) -> float:
    corrupt = {}
    if attack:
        SlowPrimaryPBFT.propose_lag = 3.0
        corrupt = {1: SlowPrimaryPBFT}  # the view-1 primary
    config = BaselineClusterConfig(
        party_class=PBFTParty, n=N, t=T, seed=3,
        delay_model=FixedDelay(DELTA), corrupt=corrupt,
        party_kwargs=dict(view_timeout=4.0),
    )
    cluster = build_baseline_cluster(config)
    cluster.start()
    cluster.run_for(DURATION)
    cluster.check_safety()
    return cluster.metrics.blocks_per_second(cluster.honest_parties[-1].index, DURATION)


def main() -> None:
    print(f"{N} parties, {DELTA * 1000:.0f} ms network, {DURATION:.0f}s simulated\n")
    rows = [
        ("ICC0", run_icc(False), run_icc(True),
         "equivocator + slow proposer + silent node (full t=3)"),
        ("PBFT", run_pbft(False), run_pbft(True),
         "one slow primary, just under the view-change timeout"),
    ]
    print(f"{'protocol':<9}{'fault-free':>12}{'under attack':>14}{'retention':>11}   attack")
    for name, clean, attacked, attack_desc in rows:
        print(
            f"{name:<9}{clean:>10.2f}/s{attacked:>12.2f}/s"
            f"{attacked / clean:>10.0%}   {attack_desc}"
        )
    print()
    print("ICC rotates leadership via the random beacon every round, so the")
    print("attackers only slow the rounds they happen to lead; PBFT keeps the")
    print("slow primary until a timeout it is careful never to trigger.")


if __name__ == "__main__":
    main()
