#!/usr/bin/env python3
"""A Byzantine fault-tolerant replicated key-value store on ICC1.

The paper's motivating application (Section 1): state machine replication.
Clients issue PUT commands at 50 req/s; every replica applies the
committed command stream to a deterministic KV machine; checkpoints prove
all replicas walk through identical states — even with a crashed node and
an equivocating proposer in the mix.

Run:  python examples/kv_store.py
"""

from __future__ import annotations

from repro.adversary import EquivocatingProposerMixin, corrupt_class
from repro.core import ClusterConfig, Payload, build_cluster
from repro.core.icc1 import ICC1Party
from repro.gossip import GossipParams, build_overlay
from repro.sim import WanDelay
from repro.smr import KVStateMachine, attach_replicas, check_replica_agreement

N = 10
T = 3
DURATION = 30.0


class KVWorkload:
    """Turns client PUTs into block payloads, deduplicating via the chain."""

    def __init__(self) -> None:
        self.sequence = 0
        self.pending: dict[bytes, bytes] = {}

    def install(self, cluster, rate: float, duration: float) -> None:
        interval = 1.0 / rate
        time = interval

        def submit():
            self.sequence += 1
            key = b"user:%d" % (self.sequence % 25)
            value = b"balance=%d" % (self.sequence * 10)
            command = KVStateMachine.put(key, value)
            self.pending[b"%d" % self.sequence] = command

        while time < duration:
            cluster.sim.schedule_at(time, submit)
            time += interval

    def payload_source(self, party, round, chain):
        included = {c for b in chain for c in b.payload.commands}
        fresh = [c for c in self.pending.values() if c not in included]
        return Payload(commands=tuple(fresh[:100]))


def main() -> None:
    workload = KVWorkload()
    equivocator = corrupt_class(ICC1Party, EquivocatingProposerMixin)
    config = ClusterConfig(
        n=N,
        t=T,
        delta_bound=0.5,
        epsilon=0.05,
        delay_model=WanDelay(),  # the paper's 6-110ms RTT WAN
        seed=7,
        payload_source=workload.payload_source,
        party_class=ICC1Party,
        corrupt={1: None, 2: equivocator},  # one crash + one equivocator
        extra_party_kwargs=dict(
            overlay=build_overlay(N, 4, seed=7),
            gossip_params=GossipParams(request_timeout=0.5),
        ),
    )
    cluster = build_cluster(config)
    replicas = attach_replicas(cluster, checkpoint_interval=25)
    workload.install(cluster, rate=50.0, duration=DURATION)
    cluster.start()
    cluster.run_for(DURATION + 10.0)

    cluster.check_safety()
    check_replica_agreement(replicas)

    live = [r for r in replicas if r.party.index not in (1, 2)]
    machine = live[0].machine
    print(f"simulated duration : {cluster.sim.now:.1f}s on a WAN "
          f"(crash + equivocator among {N} nodes)")
    print(f"rounds committed   : {live[0].party.k_max}")
    print(f"commands applied   : {live[0].commands_applied} "
          f"({machine.rejected} rejected deterministically)")
    print(f"replica state size : {len(machine.state)} keys")
    print(f"state digest       : {machine.digest().hex()[:24]}… "
          f"(identical on all {len(live)} live replicas)")
    sample = sorted(machine.state.items())[:4]
    print("sample entries     :")
    for key, value in sample:
        print(f"  {key.decode()} = {value.decode()}")
    print()
    print("replica agreement verified across",
          sum(len(r.checkpoints) for r in live), "checkpoints")


if __name__ == "__main__":
    main()
