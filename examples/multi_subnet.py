#!/usr/bin/env python3
"""Intercommunicating replicated state machines — the Internet Computer model.

The paper's opening framing (Section 1): the IC is "a dynamic collection
of intercommunicating replicated state machines: commands for atomic
broadcast on one replicated state machine are either derived from messages
received [from] other replicated state machines, or from external
clients."

This example runs two subnets ("ledger" and "registry") in one simulation,
each a 4-party ICC0 instance.  External clients write to the ledger; every
committed write also emits a cross-subnet notification which the registry
subnet then commits and applies to its own state machine — totally ordered
on both sides.

Run:  python examples/multi_subnet.py
"""

from __future__ import annotations

from repro.core import ClusterConfig, build_cluster
from repro.sim import FixedDelay, Simulation
from repro.smr import ClientFrontend, KVStateMachine, attach_replicas
from repro.smr.xnet import XNet, make_envelope


def build_subnet(name: str, sim: Simulation, seed: int):
    client = ClientFrontend()
    config = ClusterConfig(
        n=4, t=1, delta_bound=0.3, epsilon=0.01,
        delay_model=FixedDelay(0.05), seed=seed,
        payload_source=client.payload_source,
    )
    cluster = build_cluster(config, sim=sim)
    client.bind(cluster)
    replicas = attach_replicas(cluster)
    return cluster, client, replicas


def main() -> None:
    sim = Simulation(seed=11)
    xnet = XNet(sim, transfer_delay=0.2)

    ledger, ledger_client, ledger_replicas = build_subnet("ledger", sim, seed=1)
    registry, registry_client, registry_replicas = build_subnet("registry", sim, seed=2)
    xnet.register("ledger", ledger, ledger_client)
    xnet.register("registry", registry, registry_client)
    ledger.start()
    registry.start()

    # External clients issue 12 ledger writes; each also notifies the
    # registry subnet via an xnet envelope.
    for i in range(12):
        account = b"acct-%d" % (i % 3)
        amount = b"%d" % (100 + i)
        ledger_client.submit_at(
            0.3 * i + 0.01, KVStateMachine.put(account, amount)
        )
        ledger_client.submit_at(
            0.3 * i + 0.02,
            make_envelope("registry", KVStateMachine.put(b"last-writer:" + account, amount)),
        )

    sim.run(until=15.0)
    ledger.check_safety()
    registry.check_safety()

    ledger_state = ledger_replicas[0].machine
    registry_state = registry_replicas[0].machine
    print(f"ledger subnet   : {ledger.party(1).k_max} rounds committed, "
          f"{ledger_replicas[0].commands_applied} commands applied")
    print(f"registry subnet : {registry.party(1).k_max} rounds committed, "
          f"{registry_replicas[0].commands_applied} commands applied")
    print(f"xnet transfers  : {xnet.transfers} "
          f"(transfer delay {xnet.transfer_delay * 1000:.0f} ms)")
    print()
    print("ledger accounts:")
    for key, value in sorted(ledger_state.state.items()):
        print(f"  {key.decode()} = {value.decode()}")
    print("registry mirror (driven purely by cross-subnet messages):")
    for key, value in sorted(registry_state.state.items()):
        if key.startswith(b"last-writer:"):
            print(f"  {key.decode()} = {value.decode()}")


if __name__ == "__main__":
    main()
