#!/usr/bin/env python3
"""Quickstart: run Internet Computer Consensus on a simulated network.

Spins up a 7-party ICC0 deployment (tolerating t=2 Byzantine parties) over
a 50 ms fixed-delay network, feeds each round a small payload, runs 20
rounds, and prints the committed chain along with the paper's headline
performance numbers (2δ rounds, 3δ commit latency).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import ClusterConfig, Payload, build_cluster
from repro.sim import FixedDelay

DELTA = 0.05  # one-way network delay, seconds
ROUNDS = 20


def payload_source(party, round, chain):
    """getPayload: what a proposer puts in its block (application-defined)."""
    return Payload(commands=(f"command from round {round}".encode(),))


def main() -> None:
    config = ClusterConfig(
        n=7,
        t=2,  # tolerate up to 2 Byzantine parties (t < n/3)
        delta_bound=0.3,  # Δbnd: the conservative bound liveness relies on
        epsilon=0.01,  # ε: the rate "governor" of Section 3.5
        delay_model=FixedDelay(DELTA),
        max_rounds=ROUNDS,
        payload_source=payload_source,
        seed=42,
    )
    cluster = build_cluster(config)
    cluster.start()
    cluster.run_until_all_committed_round(ROUNDS - 1, timeout=60.0)
    cluster.check_safety()  # the atomic-broadcast prefix property

    observer = cluster.party(1)
    print(f"simulated time elapsed : {cluster.sim.now:.2f}s")
    print(f"rounds committed       : {observer.k_max}")
    print()
    print("committed chain (round, leader, first command):")
    for block in observer.output_log[:10]:
        command = block.payload.commands[0].decode() if block.payload.commands else "-"
        print(f"  round {block.round:>2}  proposer P{block.proposer}  {command!r}")
    if len(observer.output_log) > 10:
        print(f"  ... {len(observer.output_log) - 10} more")

    durations = cluster.metrics.round_durations(1)
    steady = [v for k, v in durations.items() if k >= 2]
    latencies = cluster.metrics.commit_latencies()
    print()
    print(f"mean round time  : {sum(steady) / len(steady) * 1000:.1f} ms "
          f"(paper: 2δ = {2 * DELTA * 1000:.0f} ms)")
    print(f"mean commit latency: {sum(latencies) / len(latencies) * 1000:.1f} ms "
          f"(paper: 3δ = {3 * DELTA * 1000:.0f} ms)")


if __name__ == "__main__":
    main()
